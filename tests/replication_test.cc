#include "ldap/replication.h"

#include <gtest/gtest.h>

namespace metacomm::ldap {
namespace {

Dn MustParse(const char* text) {
  auto dn = Dn::Parse(text);
  EXPECT_TRUE(dn.ok()) << text;
  return *dn;
}

Entry Person(const char* dn_text, const char* cn) {
  Entry entry(MustParse(dn_text));
  entry.AddObjectClass("top");
  entry.AddObjectClass("person");
  entry.SetOne("cn", cn);
  entry.SetOne("sn", "X");
  return entry;
}

class ReplicationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    changelog_.Attach(&supplier_);
    Entry suffix(MustParse("o=Lucent"));
    suffix.AddObjectClass("top");
    suffix.SetOne("o", "Lucent");
    ASSERT_TRUE(supplier_.Add(suffix).ok());
    ASSERT_TRUE(replica_.Add(suffix).ok());
  }

  Backend supplier_;
  Backend replica_;
  Changelog changelog_;
};

TEST_F(ReplicationTest, InitialPullConverges) {
  ASSERT_TRUE(supplier_.Add(Person("cn=A,o=Lucent", "A")).ok());
  ASSERT_TRUE(supplier_.Add(Person("cn=B,o=Lucent", "B")).ok());

  ReplicationConsumer consumer(&replica_);
  auto applied = consumer.PullFrom(changelog_);
  ASSERT_TRUE(applied.ok()) << applied.status();
  EXPECT_EQ(*applied, 3u);  // Suffix + 2 persons.
  EXPECT_TRUE(replica_.Exists(MustParse("cn=A,o=Lucent")));
  EXPECT_TRUE(replica_.Exists(MustParse("cn=B,o=Lucent")));
}

TEST_F(ReplicationTest, IncrementalPullUsesCookie) {
  ReplicationConsumer consumer(&replica_);
  ASSERT_TRUE(supplier_.Add(Person("cn=A,o=Lucent", "A")).ok());
  ASSERT_TRUE(consumer.PullFrom(changelog_).ok());
  uint64_t cookie = consumer.cookie();

  ASSERT_TRUE(supplier_.Add(Person("cn=B,o=Lucent", "B")).ok());
  auto applied = consumer.PullFrom(changelog_);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, 1u);
  EXPECT_GT(consumer.cookie(), cookie);
}

TEST_F(ReplicationTest, ModifyAndRenamePropagate) {
  ReplicationConsumer consumer(&replica_);
  ASSERT_TRUE(supplier_.Add(Person("cn=A,o=Lucent", "A")).ok());
  Modification mod;
  mod.type = Modification::Type::kReplace;
  mod.attribute = "sn";
  mod.values = {"Changed"};
  ASSERT_TRUE(supplier_.Modify(MustParse("cn=A,o=Lucent"), {mod}).ok());
  ASSERT_TRUE(supplier_
                  .ModifyRdn(MustParse("cn=A,o=Lucent"), Rdn("cn", "A2"),
                             true)
                  .ok());
  ASSERT_TRUE(consumer.PullFrom(changelog_).ok());
  auto entry = replica_.Get(MustParse("cn=A2,o=Lucent"));
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->GetFirst("sn"), "Changed");
  EXPECT_FALSE(replica_.Exists(MustParse("cn=A,o=Lucent")));
}

TEST_F(ReplicationTest, ReplayIsIdempotent) {
  // Relaxed write-write consistency (paper §2): replaying an
  // overlapping window still converges.
  ASSERT_TRUE(supplier_.Add(Person("cn=A,o=Lucent", "A")).ok());
  ASSERT_TRUE(supplier_.Delete(MustParse("cn=A,o=Lucent")).ok());
  ASSERT_TRUE(supplier_.Add(Person("cn=A,o=Lucent", "A")).ok());

  ReplicationConsumer first(&replica_);
  ASSERT_TRUE(first.PullFrom(changelog_).ok());
  // A second consumer with a stale cookie replays everything.
  ReplicationConsumer stale(&replica_);
  auto replayed = stale.PullFrom(changelog_);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  EXPECT_TRUE(replica_.Exists(MustParse("cn=A,o=Lucent")));
  EXPECT_EQ(replica_.Size(), supplier_.Size());
}

TEST_F(ReplicationTest, ModifyOnMissingEntryCreatesIt) {
  ASSERT_TRUE(supplier_.Add(Person("cn=A,o=Lucent", "A")).ok());
  Modification mod;
  mod.type = Modification::Type::kReplace;
  mod.attribute = "sn";
  mod.values = {"Z"};
  ASSERT_TRUE(supplier_.Modify(MustParse("cn=A,o=Lucent"), {mod}).ok());

  // Replica never saw the add (trimmed log): start after it.
  ReplicationConsumer consumer(&replica_);
  std::vector<ChangeRecord> changes = changelog_.ChangesAfter(0);
  // Apply only the modify record.
  ASSERT_TRUE(consumer.ApplyRecord(changes.back()).ok());
  auto entry = replica_.Get(MustParse("cn=A,o=Lucent"));
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->GetFirst("sn"), "Z");
}

TEST_F(ReplicationTest, TrimDropsOldRecords) {
  ASSERT_TRUE(supplier_.Add(Person("cn=A,o=Lucent", "A")).ok());
  ASSERT_TRUE(supplier_.Add(Person("cn=B,o=Lucent", "B")).ok());
  uint64_t last = changelog_.LastSequence();
  EXPECT_EQ(changelog_.Size(), 3u);
  changelog_.TrimThrough(last - 1);
  EXPECT_EQ(changelog_.Size(), 1u);
  EXPECT_EQ(changelog_.ChangesAfter(0).size(), 1u);
}

}  // namespace
}  // namespace metacomm::ldap
