// Socket-level torture tests for the TCP wire boundary: adversarial
// byte patterns (1-byte writes, frames split or coalesced across
// write() calls, pipelining), framing violations, load shedding, and
// the guarantee that a reply over the wire is byte-identical to the
// in-process handler's answer.

#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "ldap/server.h"
#include "ldap/text_protocol.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/tcp_client.h"
#include "net/tcp_server.h"

namespace metacomm::net {
namespace {

using ldap::BusyReply;
using ldap::Entry;
using ldap::FramingErrorReply;
using ldap::LdapServer;
using ldap::Schema;
using ldap::ServerConfig;
using ldap::TextProtocolHandler;

std::unique_ptr<LdapServer> MakeDirectory(bool anonymous_writes = true) {
  auto server = std::make_unique<LdapServer>(
      Schema::Standard(),
      ServerConfig{.allow_anonymous_writes = anonymous_writes});
  Entry suffix(*ldap::Dn::Parse("o=Lucent"));
  suffix.AddObjectClass("top");
  suffix.AddObjectClass("organization");
  suffix.SetOne("o", "Lucent");
  EXPECT_TRUE(server->backend().Add(suffix).ok());
  server->AddUser(*ldap::Dn::Parse("cn=admin,o=Lucent"), "secret");
  return server;
}

std::unique_ptr<TcpServer> Serve(LdapServer* directory,
                                 TcpServerConfig config = {}) {
  config.busy_reply = BusyReply();
  config.error_reply = FramingErrorReply();
  auto server = std::make_unique<TcpServer>(
      std::move(config), [directory] {
        auto session = std::make_shared<TextProtocolHandler>(directory);
        return [session](const std::string& request) {
          return session->Handle(request);
        };
      });
  EXPECT_TRUE(server->Start().ok());
  return server;
}

bool WriteAll(int fd, std::string_view data) {
  while (!data.empty()) {
    ssize_t n = ::write(fd, data.data(), data.size());
    if (n <= 0) return false;
    data.remove_prefix(static_cast<size_t>(n));
  }
  return true;
}

/// Blocking read of one length-prefixed frame; empty optional on EOF
/// or malformed header.
std::optional<std::string> ReadFrame(int fd) {
  std::string header;
  char c = 0;
  while (true) {
    ssize_t n = ::read(fd, &c, 1);
    if (n <= 0) return std::nullopt;
    if (c == '\n') break;
    if (c < '0' || c > '9' || header.size() > 12) return std::nullopt;
    header.push_back(c);
  }
  std::optional<uint64_t> parsed = ParseUint64(header);
  if (!parsed.has_value()) return std::nullopt;
  size_t length = static_cast<size_t>(*parsed);
  std::string payload(length, '\0');
  size_t got = 0;
  while (got < length) {
    ssize_t n = ::read(fd, payload.data() + got, length - got);
    if (n <= 0) return std::nullopt;
    got += static_cast<size_t>(n);
  }
  return payload;
}

/// True when read() reports EOF (server closed the connection).
bool ReadEof(int fd) {
  char c = 0;
  return ::read(fd, &c, 1) == 0;
}

const char kAddAda[] =
    "ADD\ndn: cn=Ada,o=Lucent\nobjectClass: top\n"
    "objectClass: person\ncn: Ada\nsn: L\n";
const char kSearchAll[] =
    "SEARCH base: o=Lucent\nscope: sub\nfilter: (objectClass=*)\n";

TEST(WireTortureTest, OneByteWritesReassembleIntoOneRequest) {
  auto directory = MakeDirectory();
  auto server = Serve(directory.get());
  auto fd = ConnectTcp("127.0.0.1", server->port());
  ASSERT_TRUE(fd.ok());

  std::string frame = EncodeFrame(kAddAda);
  for (char byte : frame) {
    ASSERT_TRUE(WriteAll(fd->get(), std::string_view(&byte, 1)));
  }
  auto reply = ReadFrame(fd->get());
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(StartsWith(*reply, "RESULT 0")) << *reply;
}

TEST(WireTortureTest, SplitAndCoalescedWritesKeepFrameBoundaries) {
  auto directory = MakeDirectory();
  auto server = Serve(directory.get());
  auto fd = ConnectTcp("127.0.0.1", server->port());
  ASSERT_TRUE(fd.ok());

  // Two frames coalesced into a single write(), plus a third split in
  // the middle of its length header and again inside its payload.
  std::string first = EncodeFrame(kAddAda);
  std::string second = EncodeFrame(kSearchAll);
  ASSERT_TRUE(WriteAll(fd->get(), first + second));
  std::string third = EncodeFrame(kSearchAll);
  ASSERT_TRUE(WriteAll(fd->get(), third.substr(0, 1)));
  ASSERT_TRUE(WriteAll(fd->get(), third.substr(1, 7)));
  ASSERT_TRUE(WriteAll(fd->get(), third.substr(8)));

  auto add_reply = ReadFrame(fd->get());
  ASSERT_TRUE(add_reply.has_value());
  EXPECT_TRUE(StartsWith(*add_reply, "RESULT 0")) << *add_reply;
  auto search_reply = ReadFrame(fd->get());
  ASSERT_TRUE(search_reply.has_value());
  EXPECT_NE(search_reply->find("cn=Ada,o=Lucent"), std::string::npos);
  auto split_reply = ReadFrame(fd->get());
  ASSERT_TRUE(split_reply.has_value());
  EXPECT_EQ(*split_reply, *search_reply);
}

TEST(WireTortureTest, PipelinedRequestsAnsweredInOrder) {
  auto directory = MakeDirectory();
  auto server = Serve(directory.get());
  auto fd = ConnectTcp("127.0.0.1", server->port());
  ASSERT_TRUE(fd.ok());

  std::string burst;
  constexpr int kCount = 16;
  for (int i = 0; i < kCount; ++i) {
    std::string cn = "Pipe" + std::to_string(i);
    burst += EncodeFrame("ADD\ndn: cn=" + cn +
                         ",o=Lucent\nobjectClass: top\n"
                         "objectClass: person\ncn: " +
                         cn + "\nsn: P\n");
    burst += EncodeFrame("SEARCH base: cn=" + cn +
                         ",o=Lucent\nscope: base\nfilter: (cn=" + cn +
                         ")\n");
  }
  ASSERT_TRUE(WriteAll(fd->get(), burst));
  for (int i = 0; i < kCount; ++i) {
    auto add_reply = ReadFrame(fd->get());
    ASSERT_TRUE(add_reply.has_value()) << i;
    EXPECT_TRUE(StartsWith(*add_reply, "RESULT 0")) << *add_reply;
    auto search_reply = ReadFrame(fd->get());
    ASSERT_TRUE(search_reply.has_value()) << i;
    // In-order: reply i must surface the entry ADDed by request i.
    EXPECT_NE(search_reply->find("Pipe" + std::to_string(i)),
              std::string::npos)
        << *search_reply;
  }
}

TEST(WireTortureTest, RepliesByteIdenticalToInProcessHandler) {
  // Same request sequence against two identically-seeded directories:
  // once through the socket server, once by calling the handler as a
  // function. Every reply must match byte for byte.
  auto wire_directory = MakeDirectory();
  auto local_directory = MakeDirectory();
  auto server = Serve(wire_directory.get());
  TcpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()).ok());
  TextProtocolHandler local(local_directory.get());

  const std::string requests[] = {
      kAddAda,
      "COMPARE dn: cn=Ada,o=Lucent\nattr: sn\nvalue: L",
      "COMPARE dn: cn=Ada,o=Lucent\nattr: sn\nvalue: X",
      kSearchAll,
      "MODIFY\ndn: cn=Ada,o=Lucent\nchangetype: modify\n"
      "replace: description\ndescription: line one\n-\n",
      "DELETE dn: cn=Ada,o=Lucent",
      "DELETE dn: cn=Ada,o=Lucent",  // NotFound error text too.
      "FROBNICATE",                  // Protocol errors too.
  };
  for (const std::string& request : requests) {
    EXPECT_EQ(client.Call(request), local.Handle(request)) << request;
  }
}

TEST(WireTortureTest, OversizedFrameAnsweredThenConnectionClosed) {
  auto directory = MakeDirectory();
  TcpServerConfig config;
  config.max_request_bytes = 128;
  auto server = Serve(directory.get(), std::move(config));
  auto fd = ConnectTcp("127.0.0.1", server->port());
  ASSERT_TRUE(fd.ok());

  // An in-budget request still works on this connection...
  ASSERT_TRUE(WriteAll(fd->get(), EncodeFrame(kSearchAll)));
  ASSERT_TRUE(ReadFrame(fd->get()).has_value());
  // ...then a frame declaring 10 KiB draws the framing error and EOF,
  // before any payload bytes are even sent.
  ASSERT_TRUE(WriteAll(fd->get(), "10240\n"));
  auto reply = ReadFrame(fd->get());
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(StartsWith(*reply, "RESULT 2")) << *reply;
  EXPECT_TRUE(ReadEof(fd->get()));
  EXPECT_EQ(server->stats().framing_errors, 1u);
}

TEST(WireTortureTest, MalformedLengthHeaderClosesConnection) {
  auto directory = MakeDirectory();
  auto server = Serve(directory.get());
  auto fd = ConnectTcp("127.0.0.1", server->port());
  ASSERT_TRUE(fd.ok());

  ASSERT_TRUE(WriteAll(fd->get(), "SEARCH base: o=Lucent\n"));  // No header.
  auto reply = ReadFrame(fd->get());
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(StartsWith(*reply, "RESULT 2")) << *reply;
  EXPECT_TRUE(ReadEof(fd->get()));
}

TEST(WireTortureTest, AdmissionControlShedsWithBusyAndRecovers) {
  auto directory = MakeDirectory();
  std::atomic<bool> overloaded{false};
  TcpServerConfig config;
  config.admit = [&overloaded] { return !overloaded.load(); };
  auto server = Serve(directory.get(), std::move(config));
  TcpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()).ok());

  EXPECT_TRUE(StartsWith(client.Call(kSearchAll), "RESULT 0"));
  overloaded.store(true);
  // Shed with the LDAP busy code — but the connection survives.
  EXPECT_TRUE(StartsWith(client.Call(kSearchAll), "RESULT 51"));
  overloaded.store(false);
  EXPECT_TRUE(StartsWith(client.Call(kSearchAll), "RESULT 0"));
  EXPECT_EQ(server->stats().shed_busy, 1u);
}

TEST(WireTortureTest, ConnectionBudgetShedsExtraConnections) {
  auto directory = MakeDirectory();
  TcpServerConfig config;
  config.max_connections = 2;
  auto server = Serve(directory.get(), std::move(config));

  TcpClient first, second;
  ASSERT_TRUE(first.Connect("127.0.0.1", server->port()).ok());
  ASSERT_TRUE(second.Connect("127.0.0.1", server->port()).ok());
  EXPECT_TRUE(StartsWith(first.Call(kSearchAll), "RESULT 0"));
  EXPECT_TRUE(StartsWith(second.Call(kSearchAll), "RESULT 0"));

  // The third connection is told "busy" and closed.
  auto fd = ConnectTcp("127.0.0.1", server->port());
  ASSERT_TRUE(fd.ok());
  auto reply = ReadFrame(fd->get());
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(StartsWith(*reply, "RESULT 51")) << *reply;
  EXPECT_TRUE(ReadEof(fd->get()));
  EXPECT_EQ(server->stats().shed_connection_limit, 1u);

  // Releasing a slot re-admits new connections (poll: the server sees
  // the close asynchronously).
  first.Close();
  TcpClient third;
  std::string verdict;
  for (int attempt = 0; attempt < 100; ++attempt) {
    ASSERT_TRUE(third.Connect("127.0.0.1", server->port()).ok());
    verdict = third.Call(kSearchAll);
    if (StartsWith(verdict, "RESULT 0")) break;
    third.Close();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(StartsWith(verdict, "RESULT 0")) << verdict;
}

TEST(WireTortureTest, BindStateIsPerConnection) {
  auto directory = MakeDirectory(/*anonymous_writes=*/false);
  auto server = Serve(directory.get());
  TcpClient alice, mallory;
  ASSERT_TRUE(alice.Connect("127.0.0.1", server->port()).ok());
  ASSERT_TRUE(mallory.Connect("127.0.0.1", server->port()).ok());

  const std::string bind =
      "BIND dn: cn=admin,o=Lucent\npassword: secret";
  EXPECT_TRUE(StartsWith(alice.Call(bind), "RESULT 0"));
  // Alice's session is authorized; Mallory's connection is not, even
  // though both talk to the same server.
  EXPECT_TRUE(StartsWith(alice.Call(kAddAda), "RESULT 0"));
  EXPECT_TRUE(StartsWith(
      mallory.Call("DELETE dn: cn=Ada,o=Lucent"), "RESULT 50"));
  // UNBIND drops Alice's privileges on her own session.
  EXPECT_TRUE(StartsWith(alice.Call("UNBIND"), "RESULT 0"));
  EXPECT_TRUE(StartsWith(
      alice.Call("DELETE dn: cn=Ada,o=Lucent"), "RESULT 50"));
}

TEST(WireTortureTest, ManyConnectionsWithInterleavedTraffic) {
  auto directory = MakeDirectory();
  auto server = Serve(directory.get());
  constexpr size_t kConns = 64;
  std::vector<std::unique_ptr<TcpClient>> clients;
  for (size_t i = 0; i < kConns; ++i) {
    clients.push_back(std::make_unique<TcpClient>());
    ASSERT_TRUE(
        clients.back()->Connect("127.0.0.1", server->port()).ok());
  }
  // Round-robin across all of them a few times; every connection's
  // session stays coherent.
  for (int round = 0; round < 3; ++round) {
    for (size_t i = 0; i < kConns; ++i) {
      EXPECT_TRUE(
          StartsWith(clients[i]->Call(kSearchAll), "RESULT 0"));
    }
  }
  EXPECT_EQ(server->stats().accepted, kConns);
  EXPECT_EQ(server->stats().requests, kConns * 3);
}

TEST(WireTortureTest, GracefulStopClosesClients) {
  auto directory = MakeDirectory();
  auto server = Serve(directory.get());
  TcpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()).ok());
  EXPECT_TRUE(StartsWith(client.Call(kSearchAll), "RESULT 0"));
  server->Stop();
  // The transport error comes back in-band as RESULT 52 (unavailable).
  EXPECT_TRUE(StartsWith(client.Call(kSearchAll), "RESULT 52"));
}

}  // namespace
}  // namespace metacomm::net
