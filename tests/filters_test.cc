#include <gtest/gtest.h>

#include "core/device_filter.h"
#include "core/integrated_schema.h"
#include "core/ldap_filter.h"
#include "core/mapping_gen.h"
#include "core/protocol_converters.h"
#include "devices/definity_pbx.h"
#include "devices/messaging_platform.h"
#include "ldap/server.h"

namespace metacomm::core {
namespace {

using devices::DefinityPbx;
using devices::MessagingPlatform;
using lexpress::DescriptorOp;
using lexpress::Record;
using lexpress::UpdateDescriptor;

// ---------- Protocol converters ----------

TEST(PbxProtocolConverterTest, CrudOverOssi) {
  DefinityPbx pbx(devices::PbxConfig{.name = "pbx1"});
  PbxProtocolConverter converter(&pbx);

  Record station("pbx");
  station.SetOne("Extension", "4567");
  station.SetOne("Name", "John Doe");  // Space forces quoting.
  station.SetOne("Room", "2C-401");
  ASSERT_TRUE(converter.Add(station).ok());

  auto fetched = converter.Get("4567");
  ASSERT_TRUE(fetched.ok());
  ASSERT_TRUE(fetched->has_value());
  EXPECT_EQ((*fetched)->GetFirst("Name"), "John Doe");
  EXPECT_EQ((*fetched)->GetFirst("Room"), "2C-401");

  // Modify takes the FULL desired image: fields absent from it are
  // cleared at the device.
  Record change = station;
  change.SetOne("Room", "3F-112");
  ASSERT_TRUE(converter.Modify("4567", change).ok());
  fetched = converter.Get("4567");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ((*fetched)->GetFirst("Room"), "3F-112");
  EXPECT_EQ((*fetched)->GetFirst("Name"), "John Doe");

  Record without_room = station;
  without_room.Remove("Room");
  ASSERT_TRUE(converter.Modify("4567", without_room).ok());
  fetched = converter.Get("4567");
  ASSERT_TRUE(fetched.ok());
  EXPECT_FALSE((*fetched)->Has("Room"));  // Removal propagated.

  auto all = converter.DumpAll();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 1u);

  ASSERT_TRUE(converter.Delete("4567").ok());
  fetched = converter.Get("4567");
  ASSERT_TRUE(fetched.ok());
  EXPECT_FALSE(fetched->has_value());
}

TEST(PbxProtocolConverterTest, KeyChangeViaModify) {
  DefinityPbx pbx(devices::PbxConfig{.name = "pbx1"});
  PbxProtocolConverter converter(&pbx);
  Record station("pbx");
  station.SetOne("Extension", "4567");
  station.SetOne("Name", "X");
  ASSERT_TRUE(converter.Add(station).ok());
  Record rekeyed = station;
  rekeyed.SetOne("Extension", "4999");
  ASSERT_TRUE(converter.Modify("4567", rekeyed).ok());
  auto fetched = converter.Get("4999");
  ASSERT_TRUE(fetched.ok());
  EXPECT_TRUE(fetched->has_value());
}

TEST(MpProtocolConverterTest, CrudOverKeywordProtocol) {
  MessagingPlatform mp(devices::MpConfig{.name = "mp1"});
  MpProtocolConverter converter(&mp);

  Record mailbox("mp");
  mailbox.SetOne("MailboxNumber", "4567");
  mailbox.SetOne("SubscriberName", "John Doe");
  ASSERT_TRUE(converter.Add(mailbox).ok());

  auto fetched = converter.Get("4567");
  ASSERT_TRUE(fetched.ok());
  ASSERT_TRUE(fetched->has_value());
  EXPECT_EQ((*fetched)->GetFirst("SubscriberName"), "John Doe");
  EXPECT_EQ((*fetched)->GetFirst("SubscriberId"), "SUB000001");

  Record change = mailbox;
  change.SetOne("Greeting", "standard");
  ASSERT_TRUE(converter.Modify("4567", change).ok());
  fetched = converter.Get("4567");
  EXPECT_EQ((*fetched)->GetFirst("Greeting"), "standard");
  // SubscriberName survived (full image carried it); the generated
  // SubscriberId survives regardless.
  EXPECT_EQ((*fetched)->GetFirst("SubscriberName"), "John Doe");
  EXPECT_EQ((*fetched)->GetFirst("SubscriberId"), "SUB000001");

  Record without_greeting = mailbox;
  ASSERT_TRUE(converter.Modify("4567", without_greeting).ok());
  fetched = converter.Get("4567");
  EXPECT_FALSE((*fetched)->Has("Greeting"));  // Removal propagated.

  ASSERT_TRUE(converter.Delete("4567").ok());
  fetched = converter.Get("4567");
  ASSERT_TRUE(fetched.ok());
  EXPECT_FALSE(fetched->has_value());
}

// ---------- Device filter ----------

class DeviceFilterTest : public ::testing::Test {
 protected:
  DeviceFilterTest() : pbx_(devices::PbxConfig{.name = "pbx1"}) {
    PbxMappingParams params;
    params.name = "pbx1";
    auto mappings =
        lexpress::CompileMappings(GeneratePbxMappings(params));
    EXPECT_TRUE(mappings.ok()) << mappings.status();
    filter_ = std::make_unique<DeviceFilter>(
        &pbx_, std::make_unique<PbxProtocolConverter>(&pbx_),
        std::move((*mappings)[0]), std::move((*mappings)[1]),
        "Extension");
  }

  UpdateDescriptor AddDescriptor(const char* extension, const char* name,
                                 bool conditional = false) {
    UpdateDescriptor desc;
    desc.op = DescriptorOp::kAdd;
    desc.schema = "pbx";
    desc.conditional = conditional;
    desc.new_record.set_schema("pbx");
    desc.new_record.SetOne("Extension", extension);
    desc.new_record.SetOne("Name", name);
    return desc;
  }

  DefinityPbx pbx_;
  std::unique_ptr<DeviceFilter> filter_;
};

TEST_F(DeviceFilterTest, ApplyAddModifyDelete) {
  auto result = filter_->Apply(AddDescriptor("4567", "John Doe"));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->GetFirst("Name"), "John Doe");

  UpdateDescriptor mod;
  mod.op = DescriptorOp::kModify;
  mod.schema = "pbx";
  mod.old_record.SetOne("Extension", "4567");
  mod.new_record.SetOne("Extension", "4567");
  mod.new_record.SetOne("Name", "John Doe");
  mod.new_record.SetOne("Room", "3F-112");
  result = filter_->Apply(mod);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->GetFirst("Room"), "3F-112");

  UpdateDescriptor del;
  del.op = DescriptorOp::kDelete;
  del.schema = "pbx";
  del.old_record.SetOne("Extension", "4567");
  ASSERT_TRUE(filter_->Apply(del).ok());
  EXPECT_EQ(pbx_.StationCount(), 0u);
}

TEST_F(DeviceFilterTest, ConditionalAddBecomesModify) {
  // §5.4: "add operations are reapplied as conditional modify
  // operations. If a conditional modify fails, the update filters then
  // attempt to add the record."
  ASSERT_TRUE(filter_->Apply(AddDescriptor("4567", "John Doe")).ok());
  // Reapplied add on an existing record: succeeds as a modify.
  auto result = filter_->Apply(AddDescriptor("4567", "John Doe",
                                             /*conditional=*/true));
  EXPECT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(pbx_.StationCount(), 1u);
  EXPECT_EQ(filter_->conditional_fallbacks(), 0u);

  // Reapplied add on a *missing* record: falls back to add.
  result = filter_->Apply(AddDescriptor("4999", "Pat Smith",
                                        /*conditional=*/true));
  EXPECT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(pbx_.StationCount(), 2u);
  EXPECT_EQ(filter_->conditional_fallbacks(), 1u);
}

TEST_F(DeviceFilterTest, NonConditionalAddOnExistingFails) {
  ASSERT_TRUE(filter_->Apply(AddDescriptor("4567", "John Doe")).ok());
  EXPECT_EQ(
      filter_->Apply(AddDescriptor("4567", "John Doe")).status().code(),
      StatusCode::kAlreadyExists);
}

TEST_F(DeviceFilterTest, NormalModifyOnMissingFailsNoAddAttempted) {
  // "If a normal modify fails, no add is attempted" (§5.4).
  UpdateDescriptor mod;
  mod.op = DescriptorOp::kModify;
  mod.schema = "pbx";
  mod.old_record.SetOne("Extension", "4567");
  mod.new_record.SetOne("Extension", "4567");
  mod.new_record.SetOne("Name", "Ghost");
  EXPECT_EQ(filter_->Apply(mod).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(pbx_.StationCount(), 0u);

  mod.conditional = true;
  EXPECT_TRUE(filter_->Apply(mod).ok());
  EXPECT_EQ(pbx_.StationCount(), 1u);
}

TEST_F(DeviceFilterTest, ConditionalDeleteOnMissingIsOk) {
  UpdateDescriptor del;
  del.op = DescriptorOp::kDelete;
  del.schema = "pbx";
  del.old_record.SetOne("Extension", "4567");
  EXPECT_EQ(filter_->Apply(del).status().code(), StatusCode::kNotFound);
  del.conditional = true;
  EXPECT_TRUE(filter_->Apply(del).ok());
}

TEST_F(DeviceFilterTest, DduHandlerFiresForAdminNotForSelf) {
  std::vector<UpdateDescriptor> ddus;
  filter_->SetDduHandler(
      [&ddus](UpdateDescriptor desc) { ddus.push_back(std::move(desc)); });

  // MetaComm's own propagation: suppressed.
  ASSERT_TRUE(filter_->Apply(AddDescriptor("4567", "John Doe")).ok());
  EXPECT_TRUE(ddus.empty());

  // A device administrator at the terminal: forwarded.
  ASSERT_TRUE(
      pbx_.ExecuteCommand("change station 4567 Room 9Z-1").ok());
  ASSERT_EQ(ddus.size(), 1u);
  EXPECT_EQ(ddus[0].op, DescriptorOp::kModify);
  EXPECT_EQ(ddus[0].source, "pbx1");
  EXPECT_EQ(ddus[0].schema, "pbx");
  EXPECT_TRUE(ddus[0].explicit_attrs.count("Room"));
  EXPECT_FALSE(ddus[0].explicit_attrs.count("Name"));
}

// ---------- LDAP filter ----------

class LdapFilterTest : public ::testing::Test {
 protected:
  LdapFilterTest()
      : server_(BuildIntegratedSchema(),
                ldap::ServerConfig{.allow_anonymous_writes = true}),
        filter_(&server_, LdapFilterConfig{}) {
    auto add = [this](const char* dn_text, const char* cls,
                      const char* attr, const char* value) {
      ldap::Entry entry(*ldap::Dn::Parse(dn_text));
      entry.AddObjectClass("top");
      entry.AddObjectClass(cls);
      entry.SetOne(attr, value);
      EXPECT_TRUE(server_.backend().Add(entry).ok());
    };
    add("o=Lucent", "organization", "o", "Lucent");
    add("ou=People,o=Lucent", "organizationalUnit", "ou", "People");
  }

  Record PersonRecord(const char* cn, const char* extension) {
    Record record("ldap");
    record.SetOne("cn", cn);
    record.SetOne("telephoneNumber",
                  std::string("+1 908 582 ") + extension);
    record.SetOne("DefinityExtension", extension);
    record.SetOne(kLastUpdaterAttr, "pbx1");
    return record;
  }

  ldap::LdapServer server_;
  LdapFilter filter_;
};

TEST_F(LdapFilterTest, ApplyAddCreatesSchemaValidEntry) {
  UpdateDescriptor add;
  add.op = DescriptorOp::kAdd;
  add.schema = "ldap";
  add.new_record = PersonRecord("John Doe", "4567");
  auto result = filter_.Apply(add);
  ASSERT_TRUE(result.ok()) << result.status();

  auto entry = filter_.FindByKey("John Doe");
  ASSERT_TRUE(entry.ok());
  ASSERT_TRUE(entry->has_value());
  EXPECT_TRUE((*entry)->HasObjectClass("inetOrgPerson"));
  EXPECT_TRUE((*entry)->HasObjectClass(kDefinityUserClass));
  EXPECT_TRUE((*entry)->HasObjectClass(kMetacommObjectClass));
  EXPECT_EQ((*entry)->GetFirst("sn"), "Doe");  // Synthesized.
}

TEST_F(LdapFilterTest, KeyChangeProducesModifyRdnModifyPair) {
  UpdateDescriptor add;
  add.op = DescriptorOp::kAdd;
  add.schema = "ldap";
  add.new_record = PersonRecord("John Doe", "4567");
  ASSERT_TRUE(filter_.Apply(add).ok());

  UpdateDescriptor rename;
  rename.op = DescriptorOp::kModify;
  rename.schema = "ldap";
  rename.old_record = PersonRecord("John Doe", "4567");
  rename.new_record = PersonRecord("John Q Doe", "4568");
  ASSERT_TRUE(filter_.Apply(rename).ok());

  EXPECT_EQ(filter_.pair_operations(), 1u);
  auto old_entry = filter_.FindByKey("John Doe");
  ASSERT_TRUE(old_entry.ok());
  EXPECT_FALSE(old_entry->has_value());
  auto new_entry = filter_.FindByKey("John Q Doe");
  ASSERT_TRUE(new_entry.ok());
  ASSERT_TRUE(new_entry->has_value());
  EXPECT_EQ((*new_entry)->GetFirst("DefinityExtension"), "4568");
}

TEST_F(LdapFilterTest, PairCrashLeavesInconsistencyForReaders) {
  // §5.1: if the UM crashes between ModifyRDN and Modify, the entry is
  // renamed but carries the old non-RDN attributes.
  UpdateDescriptor add;
  add.op = DescriptorOp::kAdd;
  add.schema = "ldap";
  add.new_record = PersonRecord("John Doe", "4567");
  ASSERT_TRUE(filter_.Apply(add).ok());

  filter_.set_pair_crash_hook(
      [] { return Status::Internal("simulated UM crash"); });
  UpdateDescriptor rename;
  rename.op = DescriptorOp::kModify;
  rename.schema = "ldap";
  rename.old_record = PersonRecord("John Doe", "4567");
  rename.new_record = PersonRecord("John Q Doe", "4568");
  EXPECT_FALSE(filter_.Apply(rename).ok());

  // Renamed, but the extension was never updated: the §5.1 window.
  auto entry = filter_.FindByKey("John Q Doe");
  ASSERT_TRUE(entry.ok());
  ASSERT_TRUE(entry->has_value());
  EXPECT_EQ((*entry)->GetFirst("DefinityExtension"), "4567");

  // Recovery: reapplying the same update (resynchronization) finds the
  // entry at the NEW key and completes the modify half idempotently.
  filter_.set_pair_crash_hook(nullptr);
  rename.conditional = true;
  EXPECT_TRUE(filter_.Apply(rename).ok());
  entry = filter_.FindByKey("John Q Doe");
  EXPECT_EQ((*entry)->GetFirst("DefinityExtension"), "4568");
}

TEST_F(LdapFilterTest, DiffRemovesDroppedAttributesOnly) {
  UpdateDescriptor add;
  add.op = DescriptorOp::kAdd;
  add.schema = "ldap";
  add.new_record = PersonRecord("John Doe", "4567");
  add.new_record.SetOne("roomNumber", "2C-401");
  ASSERT_TRUE(filter_.Apply(add).ok());

  // An attribute outside the update's view survives.
  ldap::OpContext ctx;
  ctx.internal = true;
  ldap::Modification mail;
  mail.type = ldap::Modification::Type::kReplace;
  mail.attribute = "mail";
  mail.values = {"jd@lucent.com"};
  ASSERT_TRUE(server_
                  .Modify(ctx, ldap::ModifyRequest{
                                   *ldap::Dn::Parse(
                                       "cn=John Doe,ou=People,o=Lucent"),
                                   {mail}})
                  .ok());

  UpdateDescriptor mod;
  mod.op = DescriptorOp::kModify;
  mod.schema = "ldap";
  mod.old_record = add.new_record;
  mod.new_record = PersonRecord("John Doe", "4567");  // roomNumber gone.
  ASSERT_TRUE(filter_.Apply(mod).ok());

  auto entry = filter_.FindByKey("John Doe");
  ASSERT_TRUE(entry.ok() && entry->has_value());
  EXPECT_FALSE((*entry)->Has("roomNumber"));     // Dropped by update.
  EXPECT_EQ((*entry)->GetFirst("mail"), "jd@lucent.com");  // Untouched.
}

TEST_F(LdapFilterTest, ConditionalSemantics) {
  UpdateDescriptor add;
  add.op = DescriptorOp::kAdd;
  add.schema = "ldap";
  add.conditional = true;
  add.new_record = PersonRecord("John Doe", "4567");
  // Conditional add with no existing entry: plain add.
  ASSERT_TRUE(filter_.Apply(add).ok());
  // Conditional add again: degrades to modify.
  add.new_record.SetOne("roomNumber", "1A-1");
  ASSERT_TRUE(filter_.Apply(add).ok());
  auto entry = filter_.FindByKey("John Doe");
  EXPECT_EQ((*entry)->GetFirst("roomNumber"), "1A-1");

  // Conditional delete on missing: OK.
  UpdateDescriptor del;
  del.op = DescriptorOp::kDelete;
  del.schema = "ldap";
  del.conditional = true;
  del.old_record.SetOne("cn", "Ghost");
  EXPECT_TRUE(filter_.Apply(del).ok());
}

TEST_F(LdapFilterTest, FindByAttrUsesIndex) {
  UpdateDescriptor add;
  add.op = DescriptorOp::kAdd;
  add.schema = "ldap";
  add.new_record = PersonRecord("John Doe", "4567");
  ASSERT_TRUE(filter_.Apply(add).ok());
  auto found = filter_.FindByAttr("DefinityExtension", "4567");
  ASSERT_TRUE(found.ok());
  ASSERT_TRUE(found->has_value());
  EXPECT_EQ((*found)->GetFirst("cn"), "John Doe");
  found = filter_.FindByAttr("DefinityExtension", "0000");
  ASSERT_TRUE(found.ok());
  EXPECT_FALSE(found->has_value());
}

TEST_F(LdapFilterTest, RecordEntryRoundTrip) {
  Record record = PersonRecord("John Doe", "4567");
  auto entry = filter_.ToEntry(record);
  ASSERT_TRUE(entry.ok());
  Record back = filter_.ToRecord(*entry);
  EXPECT_EQ(back.GetFirst("cn"), "John Doe");
  EXPECT_EQ(back.GetFirst("DefinityExtension"), "4567");
  EXPECT_FALSE(back.Has("objectClass"));
}

}  // namespace
}  // namespace metacomm::core
