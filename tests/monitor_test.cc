#include "core/monitor.h"

#include <gtest/gtest.h>

#include "core/metacomm.h"

namespace metacomm::core {
namespace {

class MonitorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto system = MetaCommSystem::Create(SystemConfig{});
    ASSERT_TRUE(system.ok()) << system.status();
    system_ = std::move(*system);
  }

  /// Reads "key=value" out of an entry's monitorInfo values.
  static std::string Counter(const ldap::Entry& entry,
                             const std::string& key) {
    for (const std::string& info : entry.GetAll("monitorInfo")) {
      size_t eq = info.find('=');
      if (eq != std::string::npos && info.substr(0, eq) == key) {
        return info.substr(eq + 1);
      }
    }
    return "";
  }

  std::unique_ptr<MetaCommSystem> system_;
};

TEST_F(MonitorTest, RefreshPublishesAllSections) {
  ASSERT_TRUE(system_->monitor().Refresh().ok());
  ldap::Client client = system_->NewClient();
  auto entries = client.Search("cn=monitor,o=Lucent",
                               "(objectClass=monitoredObject)");
  ASSERT_TRUE(entries.ok()) << entries.status();
  // Container + gateway + update-manager + um-batches + directory +
  // ldap-reads + one um-shard-N per update-queue shard (one at default
  // worker_threads=1) + one um-health-<repo> per repository (pbx1 and
  // mp1 in the default assembly).
  EXPECT_EQ(entries->size(), 9u);

  auto health = client.Get("cn=um-health-mp1,cn=monitor,o=Lucent");
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_EQ(Counter(*health, "breakerState"), "closed");
  EXPECT_EQ(Counter(*health, "replayBacklog"), "0");
  EXPECT_EQ(Counter(*health, "reachable"), "1");

  auto reads = client.Get("cn=ldap-reads,cn=monitor,o=Lucent");
  ASSERT_TRUE(reads.ok());
  EXPECT_NE(Counter(*reads, "searches"), "");
  EXPECT_NE(Counter(*reads, "snapshotVersion"), "0");
}

TEST_F(MonitorTest, CountersTrackActivity) {
  ASSERT_TRUE(system_
                  ->AddPerson("John Doe",
                              {{"telephoneNumber", "+1 908 582 4567"}})
                  .ok());
  ASSERT_TRUE(system_->monitor().Refresh().ok());

  ldap::Client client = system_->NewClient();
  auto um = client.Get("cn=update-manager,cn=monitor,o=Lucent");
  ASSERT_TRUE(um.ok());
  EXPECT_EQ(Counter(*um, "ldapUpdates"), "1");
  EXPECT_EQ(Counter(*um, "errors"), "0");
  EXPECT_NE(Counter(*um, "deviceApplies"), "0");

  auto gateway = client.Get("cn=gateway,cn=monitor,o=Lucent");
  ASSERT_TRUE(gateway.ok());
  EXPECT_EQ(Counter(*gateway, "updates"), "1");

  auto directory = client.Get("cn=directory,cn=monitor,o=Lucent");
  ASSERT_TRUE(directory.ok());
  EXPECT_NE(Counter(*directory, "entries"), "");
}

TEST_F(MonitorTest, RefreshIsRepeatableAndUpdatesInPlace) {
  ASSERT_TRUE(system_->monitor().Refresh().ok());
  ldap::Client client = system_->NewClient();
  auto before = client.Get("cn=gateway,cn=monitor,o=Lucent");
  ASSERT_TRUE(before.ok());
  std::string reads_before = Counter(*before, "reads");

  // Generate read traffic, refresh again: same entry, new numbers.
  for (int i = 0; i < 5; ++i) {
    (void)client.Get("cn=monitor,o=Lucent");
  }
  ASSERT_TRUE(system_->monitor().Refresh().ok());
  auto after = client.Get("cn=gateway,cn=monitor,o=Lucent");
  ASSERT_TRUE(after.ok());
  EXPECT_NE(Counter(*after, "reads"), reads_before);

  auto entries = client.Search("cn=monitor,o=Lucent",
                               "(objectClass=monitoredObject)");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 9u);  // No duplicates.
}

TEST_F(MonitorTest, MonitorWritesDoNotTriggerPropagation) {
  ASSERT_TRUE(system_->monitor().Refresh().ok());
  // Monitor entries live outside ou=People and are written to the
  // backend directly, so the UM never sees them as updates.
  EXPECT_EQ(system_->update_manager().stats().ldap_updates, 0u);
  EXPECT_EQ(system_->pbx("pbx1")->StationCount(), 0u);
}

}  // namespace
}  // namespace metacomm::core
