#include "core/coalescer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/integrated_schema.h"
#include "core/ldap_filter.h"
#include "core/metacomm.h"
#include "ldap/server.h"

namespace metacomm::core {
namespace {

using lexpress::DescriptorOp;
using lexpress::Record;
using lexpress::UpdateDescriptor;

Record PersonRecord(const std::string& cn, const std::string& extension,
                    const std::string& room = "") {
  Record record("ldap");
  record.SetOne("cn", cn);
  record.SetOne("telephoneNumber", "+1 908 582 " + extension);
  record.SetOne("DefinityExtension", extension);
  if (!room.empty()) record.SetOne("roomNumber", room);
  return record;
}

UpdateDescriptor Add(const Record& image, const std::string& source = "ldap") {
  UpdateDescriptor d;
  d.op = DescriptorOp::kAdd;
  d.schema = "ldap";
  d.source = source;
  d.new_record = image;
  for (const auto& [attr, value] : image.attrs()) {
    d.explicit_attrs.insert(attr);
  }
  return d;
}

UpdateDescriptor Modify(const Record& old_image, const Record& new_image,
                        const std::string& source = "ldap") {
  UpdateDescriptor d;
  d.op = DescriptorOp::kModify;
  d.schema = "ldap";
  d.source = source;
  d.old_record = old_image;
  d.new_record = new_image;
  for (const auto& [attr, value] : new_image.attrs()) {
    if (!(old_image.Get(attr) == value)) d.explicit_attrs.insert(attr);
  }
  return d;
}

UpdateDescriptor Delete(const Record& old_image,
                        const std::string& source = "ldap") {
  UpdateDescriptor d;
  d.op = DescriptorOp::kDelete;
  d.schema = "ldap";
  d.source = source;
  d.old_record = old_image;
  return d;
}

// ---------- Merge-rule structure ----------

TEST(CoalesceBatchTest, AddPlusModifyFoldsToAdd) {
  std::vector<UpdateDescriptor> batch = {
      Add(PersonRecord("John Doe", "4567")),
      Modify(PersonRecord("John Doe", "4567"),
             PersonRecord("John Doe", "4567", "2D-101"))};
  CoalesceResult result = CoalesceBatch(batch, "cn");
  ASSERT_EQ(result.units.size(), 1u);
  EXPECT_EQ(result.coalesced_away, 1u);
  const CoalescedUnit& unit = result.units[0];
  EXPECT_EQ(unit.update.op, DescriptorOp::kAdd);
  EXPECT_EQ(unit.update.new_record.GetFirst("roomNumber"), "2D-101");
  EXPECT_EQ(unit.constituents, (std::vector<size_t>{0, 1}));
  // The later modify's explicit attributes join the add's.
  EXPECT_TRUE(unit.update.explicit_attrs.count("roomNumber"));
}

TEST(CoalesceBatchTest, ModifyChainFoldsToSingleModify) {
  std::vector<UpdateDescriptor> batch = {
      Modify(PersonRecord("John Doe", "4567"),
             PersonRecord("John Doe", "4567", "2D-101")),
      Modify(PersonRecord("John Doe", "4567", "2D-101"),
             PersonRecord("John Doe", "4567", "2D-202")),
      Modify(PersonRecord("John Doe", "4567", "2D-202"),
             PersonRecord("John Doe", "4567", "2D-303"))};
  CoalesceResult result = CoalesceBatch(batch, "cn");
  ASSERT_EQ(result.units.size(), 1u);
  EXPECT_EQ(result.coalesced_away, 2u);
  const UpdateDescriptor& folded = result.units[0].update;
  EXPECT_EQ(folded.op, DescriptorOp::kModify);
  // Old image = the FIRST's old (what the repository still holds);
  // new image = the LAST's new.
  EXPECT_EQ(folded.old_record.GetFirst("roomNumber"), "");
  EXPECT_EQ(folded.new_record.GetFirst("roomNumber"), "2D-303");
}

TEST(CoalesceBatchTest, RenameChainFoldsAcrossKeys) {
  // Modify(A->B) then Modify(B->C): the chain is addressed by its
  // current key, so both fold into one Modify(A->C).
  std::vector<UpdateDescriptor> batch = {
      Modify(PersonRecord("A Person", "4567"),
             PersonRecord("B Person", "4567")),
      Modify(PersonRecord("B Person", "4567"),
             PersonRecord("C Person", "4567"))};
  CoalesceResult result = CoalesceBatch(batch, "cn");
  ASSERT_EQ(result.units.size(), 1u);
  const UpdateDescriptor& folded = result.units[0].update;
  EXPECT_EQ(folded.old_record.GetFirst("cn"), "A Person");
  EXPECT_EQ(folded.new_record.GetFirst("cn"), "C Person");
}

TEST(CoalesceBatchTest, ModifyPlusDeleteTargetsOriginalKey) {
  // Rename then delete: the repository never saw the rename, so the
  // folded delete must target the key the repository still holds.
  std::vector<UpdateDescriptor> batch = {
      Modify(PersonRecord("John Doe", "4567"),
             PersonRecord("John Q Doe", "4567")),
      Delete(PersonRecord("John Q Doe", "4567"))};
  CoalesceResult result = CoalesceBatch(batch, "cn");
  ASSERT_EQ(result.units.size(), 1u);
  EXPECT_EQ(result.units[0].update.op, DescriptorOp::kDelete);
  EXPECT_EQ(result.units[0].update.old_record.GetFirst("cn"), "John Doe");
  EXPECT_TRUE(result.units[0].update.new_record.empty());
}

TEST(CoalesceBatchTest, AddPlusDeleteAnnihilates) {
  std::vector<UpdateDescriptor> batch = {
      Add(PersonRecord("Ghost", "4999")),
      Modify(PersonRecord("Ghost", "4999"),
             PersonRecord("Ghost", "4999", "2D-404")),
      Delete(PersonRecord("Ghost", "4999", "2D-404")),
      // A later Add of the same key is a NEW entity, not a merge into
      // the ended chain.
      Add(PersonRecord("Ghost", "4888"))};
  CoalesceResult result = CoalesceBatch(batch, "cn");
  ASSERT_EQ(result.units.size(), 2u);
  EXPECT_TRUE(result.units[0].annihilated);
  EXPECT_EQ(result.units[0].constituents, (std::vector<size_t>{0, 1, 2}));
  EXPECT_FALSE(result.units[1].annihilated);
  EXPECT_EQ(result.units[1].update.new_record.GetFirst("DefinityExtension"),
            "4888");
}

TEST(CoalesceBatchTest, DeleteIsABarrier) {
  // Delete then re-Add: two units, in queue order.
  std::vector<UpdateDescriptor> batch = {
      Delete(PersonRecord("John Doe", "4567")),
      Add(PersonRecord("John Doe", "4568"))};
  CoalesceResult result = CoalesceBatch(batch, "cn");
  ASSERT_EQ(result.units.size(), 2u);
  EXPECT_EQ(result.coalesced_away, 0u);
  EXPECT_EQ(result.units[0].update.op, DescriptorOp::kDelete);
  EXPECT_EQ(result.units[1].update.op, DescriptorOp::kAdd);
}

TEST(CoalesceBatchTest, CrossOriginatorNeverMerges) {
  // Same entity, different sources: the §5.4 conditional machinery
  // keys off the originator, so these must stay separate units.
  std::vector<UpdateDescriptor> batch = {
      Modify(PersonRecord("John Doe", "4567"),
             PersonRecord("John Doe", "4567", "2D-101"), "pbx1"),
      Modify(PersonRecord("John Doe", "4567", "2D-101"),
             PersonRecord("John Doe", "4567", "2D-202"), "mp1")};
  CoalesceResult result = CoalesceBatch(batch, "cn");
  EXPECT_EQ(result.units.size(), 2u);
  EXPECT_EQ(result.coalesced_away, 0u);
}

TEST(CoalesceBatchTest, ConditionalFlagMismatchNeverMerges) {
  UpdateDescriptor first = Modify(PersonRecord("John Doe", "4567"),
                                  PersonRecord("John Doe", "4567", "X"));
  UpdateDescriptor second = Modify(PersonRecord("John Doe", "4567", "X"),
                                   PersonRecord("John Doe", "4567", "Y"));
  second.conditional = true;
  CoalesceResult result = CoalesceBatch({first, second}, "cn");
  EXPECT_EQ(result.units.size(), 2u);
}

// ---------- Golden equivalence ----------
//
// Applying the coalesced batch must leave a repository in EXACTLY the
// state the uncoalesced sequence would have: two fresh directories, one
// per path, compared attribute-for-attribute after the dust settles.

class CoalescingGoldenTest : public ::testing::Test {
 protected:
  static std::unique_ptr<ldap::LdapServer> NewServer() {
    auto server = std::make_unique<ldap::LdapServer>(
        BuildIntegratedSchema(),
        ldap::ServerConfig{.allow_anonymous_writes = true});
    auto add = [&server](const char* dn_text, const char* cls,
                         const char* attr, const char* value) {
      ldap::Entry entry(*ldap::Dn::Parse(dn_text));
      entry.AddObjectClass("top");
      entry.AddObjectClass(cls);
      entry.SetOne(attr, value);
      EXPECT_TRUE(server->backend().Add(entry).ok());
    };
    add("o=Lucent", "organization", "o", "Lucent");
    add("ou=People,o=Lucent", "organizationalUnit", "ou", "People");
    return server;
  }

  /// Applies `seed` then the batch item-by-item (the max_batch_size=1
  /// world) and returns the directory's final state.
  static std::vector<std::string> Sequential(
      const std::vector<UpdateDescriptor>& seed,
      const std::vector<UpdateDescriptor>& batch) {
    auto server = NewServer();
    LdapFilter filter(server.get(), LdapFilterConfig{});
    for (const UpdateDescriptor& d : seed) {
      EXPECT_TRUE(filter.Apply(d).ok());
    }
    for (const UpdateDescriptor& d : batch) {
      EXPECT_TRUE(filter.Apply(d).ok());
    }
    return Dump(filter);
  }

  /// Applies `seed`, coalesces the batch, applies the folded units.
  static std::vector<std::string> Coalesced(
      const std::vector<UpdateDescriptor>& seed,
      const std::vector<UpdateDescriptor>& batch) {
    auto server = NewServer();
    LdapFilter filter(server.get(), LdapFilterConfig{});
    for (const UpdateDescriptor& d : seed) {
      EXPECT_TRUE(filter.Apply(d).ok());
    }
    CoalesceResult folded = CoalesceBatch(batch, filter.key_attr());
    for (const CoalescedUnit& unit : folded.units) {
      if (unit.annihilated) continue;
      EXPECT_TRUE(filter.Apply(unit.update).ok());
    }
    return Dump(filter);
  }

  static std::vector<std::string> Dump(LdapFilter& filter) {
    auto records = filter.DumpAll();
    EXPECT_TRUE(records.ok()) << records.status();
    std::vector<std::string> out;
    if (!records.ok()) return out;
    for (const Record& record : *records) out.push_back(record.ToString());
    std::sort(out.begin(), out.end());
    return out;
  }

  void ExpectEquivalent(const std::vector<UpdateDescriptor>& seed,
                        const std::vector<UpdateDescriptor>& batch) {
    std::vector<std::string> sequential = Sequential(seed, batch);
    std::vector<std::string> coalesced = Coalesced(seed, batch);
    EXPECT_EQ(sequential, coalesced);
  }
};

TEST_F(CoalescingGoldenTest, AddThenModifies) {
  ExpectEquivalent(
      {},
      {Add(PersonRecord("John Doe", "4567")),
       Modify(PersonRecord("John Doe", "4567"),
              PersonRecord("John Doe", "4567", "2D-101")),
       Modify(PersonRecord("John Doe", "4567", "2D-101"),
              PersonRecord("John Doe", "4567", "2D-202"))});
}

TEST_F(CoalescingGoldenTest, ModifyChainOnExistingEntry) {
  ExpectEquivalent(
      {Add(PersonRecord("John Doe", "4567"))},
      {Modify(PersonRecord("John Doe", "4567"),
              PersonRecord("John Doe", "4567", "2D-101")),
       Modify(PersonRecord("John Doe", "4567", "2D-101"),
              PersonRecord("John Doe", "4567", "2D-202"))});
}

TEST_F(CoalescingGoldenTest, ModifyThenDelete) {
  ExpectEquivalent({Add(PersonRecord("John Doe", "4567"))},
                   {Modify(PersonRecord("John Doe", "4567"),
                           PersonRecord("John Doe", "4567", "2D-101")),
                    Delete(PersonRecord("John Doe", "4567", "2D-101"))});
}

TEST_F(CoalescingGoldenTest, AddModifyDeleteAnnihilation) {
  ExpectEquivalent({Add(PersonRecord("Bystander", "4000"))},
                   {Add(PersonRecord("Ghost", "4999")),
                    Modify(PersonRecord("Ghost", "4999"),
                           PersonRecord("Ghost", "4999", "2D-404")),
                    Delete(PersonRecord("Ghost", "4999", "2D-404"))});
}

TEST_F(CoalescingGoldenTest, RenameInterleavings) {
  // Rename A->B, modify B, rename B->C: one unit must land the entry
  // at C with the final room — same as replaying every step.
  ExpectEquivalent(
      {Add(PersonRecord("A Person", "4567"))},
      {Modify(PersonRecord("A Person", "4567"),
              PersonRecord("B Person", "4567")),
       Modify(PersonRecord("B Person", "4567"),
              PersonRecord("B Person", "4567", "2D-505")),
       Modify(PersonRecord("B Person", "4567", "2D-505"),
              PersonRecord("C Person", "4567", "2D-505"))});
}

TEST_F(CoalescingGoldenTest, RenameThenDeleteTargetsRepositoryKey) {
  ExpectEquivalent({Add(PersonRecord("John Doe", "4567"))},
                   {Modify(PersonRecord("John Doe", "4567"),
                           PersonRecord("John Q Doe", "4567")),
                    Delete(PersonRecord("John Q Doe", "4567"))});
}

TEST_F(CoalescingGoldenTest, DeleteThenReAddBarrier) {
  ExpectEquivalent({Add(PersonRecord("John Doe", "4567"))},
                   {Delete(PersonRecord("John Doe", "4567")),
                    Add(PersonRecord("John Doe", "4568"))});
}

TEST_F(CoalescingGoldenTest, IndependentEntitiesInterleaved) {
  ExpectEquivalent(
      {Add(PersonRecord("Alpha", "4001")), Add(PersonRecord("Beta", "4002"))},
      {Modify(PersonRecord("Alpha", "4001"),
              PersonRecord("Alpha", "4001", "2D-A")),
       Modify(PersonRecord("Beta", "4002"),
              PersonRecord("Beta", "4002", "2D-B")),
       Modify(PersonRecord("Alpha", "4001", "2D-A"),
              PersonRecord("Alpha", "4001", "2D-AA")),
       Delete(PersonRecord("Beta", "4002", "2D-B"))});
}

// ---------- Batched pipeline end to end ----------

/// The full batched path (max_batch_size > 1) through a live system:
/// concurrent writers on distinct entries form real waves, and the
/// final repository state must match what sequential processing gives.
TEST(BatchedPipelineTest, ConvergesWithBatchingEnabled) {
  SystemConfig config;
  config.um.threaded = true;
  config.um.worker_threads = 1;
  config.um.max_batch_size = 8;
  // A small per-conversation cost so items genuinely pile up behind
  // the in-flight wave and PopBatch returns real multi-item batches.
  config.um.artificial_processing_delay_micros = 2'000;
  auto system = MetaCommSystem::Create(std::move(config));
  ASSERT_TRUE(system.ok()) << system.status();

  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&system, t, &failures] {
      for (int i = 0; i < kPerThread; ++i) {
        std::string extension = std::to_string(4000 + t * 100 + i);
        Status status = (*system)->AddPerson(
            "Person " + extension,
            {{"telephoneNumber", "+1 908 582 " + extension}});
        if (!status.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ((*system)->pbx("pbx1")->StationCount(),
            static_cast<size_t>(kThreads * kPerThread));
  EXPECT_EQ((*system)->mp("mp1")->MailboxCount(),
            static_cast<size_t>(kThreads * kPerThread));

  UpdateManager::Stats stats = (*system)->update_manager().stats();
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_GT(stats.batches, 0u);
  (*system)->update_manager().Stop();
}

}  // namespace
}  // namespace metacomm::core
