#include "ldap/client.h"

#include <gtest/gtest.h>

#include "ldap/server.h"

namespace metacomm::ldap {
namespace {

class ClientTest : public ::testing::Test {
 protected:
  ClientTest()
      : server_(Schema::Standard(), ServerConfig{}),
        client_(&server_) {
    Entry suffix(*Dn::Parse("o=Lucent"));
    suffix.AddObjectClass("top");
    suffix.AddObjectClass("organization");
    suffix.SetOne("o", "Lucent");
    EXPECT_TRUE(server_.backend().Add(suffix).ok());
    server_.AddUser(*Dn::Parse("cn=admin,o=Lucent"), "secret");
  }

  LdapServer server_;  // Writes require bind (default config).
  Client client_;
};

TEST_F(ClientTest, WritesRequireBind) {
  Status status = client_.Add("cn=X,o=Lucent", {{"objectClass", "top"},
                                                {"objectClass", "person"},
                                                {"cn", "X"},
                                                {"sn", "X"}});
  EXPECT_EQ(status.code(), StatusCode::kPermissionDenied);
  ASSERT_TRUE(client_.Bind("cn=admin,o=Lucent", "secret").ok());
  EXPECT_TRUE(client_.Add("cn=X,o=Lucent", {{"objectClass", "top"},
                                            {"objectClass", "person"},
                                            {"cn", "X"},
                                            {"sn", "X"}})
                  .ok());
  client_.Unbind();
  EXPECT_EQ(client_.Delete("cn=X,o=Lucent").code(),
            StatusCode::kPermissionDenied);
}

TEST_F(ClientTest, BadCredentialsRejected) {
  EXPECT_EQ(client_.Bind("cn=admin,o=Lucent", "wrong").code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(client_.Bind("cn=ghost,o=Lucent", "x").code(),
            StatusCode::kPermissionDenied);
  // Anonymous bind succeeds and conveys no principal.
  EXPECT_TRUE(client_.Bind("", "").ok());
  EXPECT_TRUE(client_.context().principal.empty());
}

TEST_F(ClientTest, CrudRoundTrip) {
  ASSERT_TRUE(client_.Bind("cn=admin,o=Lucent", "secret").ok());
  ASSERT_TRUE(client_
                  .Add("cn=John Doe,o=Lucent",
                       {{"objectClass", "top"},
                        {"objectClass", "person"},
                        {"cn", "John Doe"},
                        {"sn", "Doe"},
                        {"telephoneNumber", "+1 908 582 9000"}})
                  .ok());

  auto entry = client_.Get("cn=John Doe,o=Lucent");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->GetFirst("telephoneNumber"), "+1 908 582 9000");

  ASSERT_TRUE(
      client_.Replace("cn=John Doe,o=Lucent", "sn", "Doe-Smith").ok());
  ASSERT_TRUE(client_
                  .ReplaceAll("cn=John Doe,o=Lucent", "telephoneNumber",
                              {"+1 908 582 9001", "+1 908 582 9002"})
                  .ok());
  entry = client_.Get("cn=John Doe,o=Lucent");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->GetFirst("sn"), "Doe-Smith");
  EXPECT_EQ(entry->GetAll("telephoneNumber").size(), 2u);

  // Empty ReplaceAll removes the attribute.
  ASSERT_TRUE(
      client_.ReplaceAll("cn=John Doe,o=Lucent", "telephoneNumber", {})
          .ok());
  entry = client_.Get("cn=John Doe,o=Lucent");
  EXPECT_FALSE(entry->Has("telephoneNumber"));

  ASSERT_TRUE(
      client_.ModifyRdn("cn=John Doe,o=Lucent", "cn=Jack Doe").ok());
  EXPECT_FALSE(client_.Get("cn=John Doe,o=Lucent").ok());
  EXPECT_TRUE(client_.Get("cn=Jack Doe,o=Lucent").ok());

  ASSERT_TRUE(client_.Delete("cn=Jack Doe,o=Lucent").ok());
  EXPECT_EQ(client_.Get("cn=Jack Doe,o=Lucent").status().code(),
            StatusCode::kNotFound);
}

TEST_F(ClientTest, SearchAndCompare) {
  ASSERT_TRUE(client_.Bind("cn=admin,o=Lucent", "secret").ok());
  for (const char* cn : {"Ada", "Grace", "Edsger"}) {
    ASSERT_TRUE(client_
                    .Add(std::string("cn=") + cn + ",o=Lucent",
                         {{"objectClass", "top"},
                          {"objectClass", "person"},
                          {"cn", cn},
                          {"sn", "S"}})
                    .ok());
  }
  auto results = client_.Search("o=Lucent", "(cn=A*)");
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 1u);

  results = client_.Search("o=Lucent", "(objectClass=person)");
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 3u);

  results = client_.Search("o=Lucent", "(objectClass=person)",
                           Scope::kBase);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());  // The org entry is not a person.

  auto is_true = client_.Compare("cn=Ada,o=Lucent", "sn", "S");
  ASSERT_TRUE(is_true.ok());
  EXPECT_TRUE(*is_true);
  auto is_false = client_.Compare("cn=Ada,o=Lucent", "sn", "T");
  ASSERT_TRUE(is_false.ok());
  EXPECT_FALSE(*is_false);
  EXPECT_EQ(client_.Compare("cn=Ada,o=Lucent", "mail", "x").status().code(),
            StatusCode::kNotFound);
}

TEST_F(ClientTest, MalformedInputsSurfaceAsErrors) {
  EXPECT_EQ(client_.Get("not a dn,,,").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(client_.Search("o=Lucent", "(unbalanced").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(client_.ModifyRdn("cn=X,o=Lucent", "notanrdn").code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace metacomm::ldap
