#include "ldap/client.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "ldap/server.h"
#include "ldap/text_protocol.h"
#include "net/tcp_client.h"
#include "net/tcp_server.h"

namespace metacomm::ldap {
namespace {

/// Runs the whole client suite twice: once against the LdapServer as a
/// plain in-process LdapService, and once with every operation
/// serialized through the text protocol over a real TCP connection.
/// The bodies are identical — the Client must not be able to tell.
class ClientTest : public ::testing::TestWithParam<bool> {
 protected:
  ClientTest()
      : server_(Schema::Standard(), ServerConfig{}),
        client_(PickService()) {
    Entry suffix(*Dn::Parse("o=Lucent"));
    suffix.AddObjectClass("top");
    suffix.AddObjectClass("organization");
    suffix.SetOne("o", "Lucent");
    EXPECT_TRUE(server_.backend().Add(suffix).ok());
    server_.AddUser(*Dn::Parse("cn=admin,o=Lucent"), "secret");
  }

  /// In-process: the server itself. TCP: a TextProtocolClient whose
  /// transport is one persistent socket into a TcpServer hosting
  /// per-connection handler sessions around the same server.
  LdapService* PickService() {
    if (!GetParam()) return &server_;
    net::TcpServerConfig config;
    config.busy_reply = BusyReply();
    config.error_reply = FramingErrorReply();
    tcp_server_ = std::make_unique<net::TcpServer>(
        std::move(config), [this] {
          auto session = std::make_shared<TextProtocolHandler>(&server_);
          return [session](const std::string& request) {
            return session->Handle(request);
          };
        });
    EXPECT_TRUE(tcp_server_->Start().ok());
    tcp_client_ = std::make_unique<net::TcpClient>();
    EXPECT_TRUE(
        tcp_client_->Connect("127.0.0.1", tcp_server_->port()).ok());
    remote_ =
        std::make_unique<TextProtocolClient>(tcp_client_->Transport());
    return remote_.get();
  }

  LdapServer server_;  // Writes require bind (default config).
  std::unique_ptr<net::TcpServer> tcp_server_;   // TCP mode only.
  std::unique_ptr<net::TcpClient> tcp_client_;
  std::unique_ptr<TextProtocolClient> remote_;
  Client client_;
};

INSTANTIATE_TEST_SUITE_P(
    Transports, ClientTest, ::testing::Bool(),
    [](const ::testing::TestParamInfo<bool>& info) {
      return info.param ? "Tcp" : "InProcess";
    });

TEST_P(ClientTest, WritesRequireBind) {
  Status status = client_.Add("cn=X,o=Lucent", {{"objectClass", "top"},
                                                {"objectClass", "person"},
                                                {"cn", "X"},
                                                {"sn", "X"}});
  EXPECT_EQ(status.code(), StatusCode::kPermissionDenied);
  ASSERT_TRUE(client_.Bind("cn=admin,o=Lucent", "secret").ok());
  EXPECT_TRUE(client_.Add("cn=X,o=Lucent", {{"objectClass", "top"},
                                            {"objectClass", "person"},
                                            {"cn", "X"},
                                            {"sn", "X"}})
                  .ok());
  client_.Unbind();
  EXPECT_EQ(client_.Delete("cn=X,o=Lucent").code(),
            StatusCode::kPermissionDenied);
}

TEST_P(ClientTest, BadCredentialsRejected) {
  EXPECT_EQ(client_.Bind("cn=admin,o=Lucent", "wrong").code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(client_.Bind("cn=ghost,o=Lucent", "x").code(),
            StatusCode::kPermissionDenied);
  // Anonymous bind succeeds and conveys no principal.
  EXPECT_TRUE(client_.Bind("", "").ok());
  EXPECT_TRUE(client_.context().principal.empty());
}

TEST_P(ClientTest, CrudRoundTrip) {
  ASSERT_TRUE(client_.Bind("cn=admin,o=Lucent", "secret").ok());
  ASSERT_TRUE(client_
                  .Add("cn=John Doe,o=Lucent",
                       {{"objectClass", "top"},
                        {"objectClass", "person"},
                        {"cn", "John Doe"},
                        {"sn", "Doe"},
                        {"telephoneNumber", "+1 908 582 9000"}})
                  .ok());

  auto entry = client_.Get("cn=John Doe,o=Lucent");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->GetFirst("telephoneNumber"), "+1 908 582 9000");

  ASSERT_TRUE(
      client_.Replace("cn=John Doe,o=Lucent", "sn", "Doe-Smith").ok());
  ASSERT_TRUE(client_
                  .ReplaceAll("cn=John Doe,o=Lucent", "telephoneNumber",
                              {"+1 908 582 9001", "+1 908 582 9002"})
                  .ok());
  entry = client_.Get("cn=John Doe,o=Lucent");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->GetFirst("sn"), "Doe-Smith");
  EXPECT_EQ(entry->GetAll("telephoneNumber").size(), 2u);

  // Empty ReplaceAll removes the attribute.
  ASSERT_TRUE(
      client_.ReplaceAll("cn=John Doe,o=Lucent", "telephoneNumber", {})
          .ok());
  entry = client_.Get("cn=John Doe,o=Lucent");
  EXPECT_FALSE(entry->Has("telephoneNumber"));

  ASSERT_TRUE(
      client_.ModifyRdn("cn=John Doe,o=Lucent", "cn=Jack Doe").ok());
  EXPECT_FALSE(client_.Get("cn=John Doe,o=Lucent").ok());
  EXPECT_TRUE(client_.Get("cn=Jack Doe,o=Lucent").ok());

  ASSERT_TRUE(client_.Delete("cn=Jack Doe,o=Lucent").ok());
  EXPECT_EQ(client_.Get("cn=Jack Doe,o=Lucent").status().code(),
            StatusCode::kNotFound);
}

TEST_P(ClientTest, SearchAndCompare) {
  ASSERT_TRUE(client_.Bind("cn=admin,o=Lucent", "secret").ok());
  for (const char* cn : {"Ada", "Grace", "Edsger"}) {
    ASSERT_TRUE(client_
                    .Add(std::string("cn=") + cn + ",o=Lucent",
                         {{"objectClass", "top"},
                          {"objectClass", "person"},
                          {"cn", cn},
                          {"sn", "S"}})
                    .ok());
  }
  auto results = client_.Search("o=Lucent", "(cn=A*)");
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 1u);

  results = client_.Search("o=Lucent", "(objectClass=person)");
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 3u);

  results = client_.Search("o=Lucent", "(objectClass=person)",
                           Scope::kBase);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());  // The org entry is not a person.

  auto is_true = client_.Compare("cn=Ada,o=Lucent", "sn", "S");
  ASSERT_TRUE(is_true.ok());
  EXPECT_TRUE(*is_true);
  auto is_false = client_.Compare("cn=Ada,o=Lucent", "sn", "T");
  ASSERT_TRUE(is_false.ok());
  EXPECT_FALSE(*is_false);
  EXPECT_EQ(client_.Compare("cn=Ada,o=Lucent", "mail", "x").status().code(),
            StatusCode::kNotFound);
}

TEST_P(ClientTest, MalformedInputsSurfaceAsErrors) {
  EXPECT_EQ(client_.Get("not a dn,,,").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(client_.Search("o=Lucent", "(unbalanced").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(client_.ModifyRdn("cn=X,o=Lucent", "notanrdn").code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace metacomm::ldap
