#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ldap/backend.h"
#include "ldap/filter.h"

namespace metacomm::ldap {
namespace {

// Snapshot isolation under fire: one writer storms the backend with
// every mutation kind (including whole-subtree renames) while reader
// threads hammer the lock-free paths and assert that every observation
// is internally consistent. Run under ThreadSanitizer by check.sh.
//
// The invariant readers check: each person entry carries `stamp` and
// `stampCopy`, always written to the same value in ONE Modify. A torn
// read — an entry visible mid-update, or a search evaluated across two
// versions — shows up as stamp != stampCopy.

Dn MustParse(const std::string& text) {
  auto dn = Dn::Parse(text);
  EXPECT_TRUE(dn.ok()) << text;
  return *dn;
}

constexpr int kPersons = 16;

std::string PersonDn(int i) {
  return "cn=Person " + std::to_string(i) + ",ou=People,o=Lucent";
}

void CheckStamps(const Entry& entry, const char* where) {
  std::vector<std::string> stamp = entry.GetAll("stamp");
  std::vector<std::string> copy = entry.GetAll("stampCopy");
  ASSERT_EQ(stamp, copy) << where << ": torn entry at "
                         << entry.dn().ToString();
}

TEST(SnapshotStressTest, ReadersSeeConsistentVersionsUnderWriterStorm) {
  Backend backend;
  {
    Entry lucent(MustParse("o=Lucent"));
    lucent.AddObjectClass("top");
    lucent.SetOne("o", "Lucent");
    ASSERT_TRUE(backend.Add(lucent).ok());
    Entry people(MustParse("ou=People,o=Lucent"));
    people.AddObjectClass("top");
    people.SetOne("ou", "People");
    ASSERT_TRUE(backend.Add(people).ok());
    for (int i = 0; i < kPersons; ++i) {
      Entry person(MustParse(PersonDn(i)));
      person.AddObjectClass("top");
      person.AddObjectClass("person");
      person.SetOne("cn", "Person " + std::to_string(i));
      person.SetOne("sn", "Stress");
      person.SetOne("stamp", "v0");
      person.SetOne("stampCopy", "v0");
      ASSERT_TRUE(backend.Add(person).ok());
    }
  }

  std::atomic<bool> stop{false};

  std::thread writer([&backend, &stop] {
    Dn people = MustParse("ou=People,o=Lucent");
    for (int i = 0; i < 2000; ++i) {
      int op = i % 16;
      if (op == 15) {
        // Case-only subtree rename: same normalized key, but every
        // descendant DN is rewritten and re-indexed in one commit.
        Rdn flipped("ou", i % 32 == 15 ? "PEOPLE" : "People");
        ASSERT_TRUE(
            backend.ModifyRdn(people, flipped, /*delete_old_rdn=*/true)
                .ok());
      } else if (op == 14) {
        // Churn one extra leaf through add/delete.
        Entry extra(MustParse("cn=Visitor,ou=People,o=Lucent"));
        extra.AddObjectClass("top");
        extra.SetOne("cn", "Visitor");
        ASSERT_TRUE(backend.Add(extra).ok());
        ASSERT_TRUE(
            backend.Delete(MustParse("cn=Visitor,ou=People,o=Lucent"))
                .ok());
      } else {
        std::string value = "v" + std::to_string(i);
        Modification stamp;
        stamp.type = Modification::Type::kReplace;
        stamp.attribute = "stamp";
        stamp.values = {value};
        Modification copy;
        copy.type = Modification::Type::kReplace;
        copy.attribute = "stampCopy";
        copy.values = {value};
        ASSERT_TRUE(
            backend.Modify(MustParse(PersonDn(op)), {stamp, copy}).ok());
      }
    }
    stop.store(true);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&backend, &stop, t] {
      Dn base = MustParse("ou=People,o=Lucent");
      int round = 0;
      while (!stop.load()) {
        // Lock-free Get: the fetched entry is one committed version.
        auto entry = backend.Get(MustParse(PersonDn((t + round) % kPersons)));
        ASSERT_TRUE(entry.ok());
        CheckStamps(*entry, "Get");

        // Indexed subtree search on a consistent snapshot.
        SearchRequest request;
        request.base = base;
        request.scope = Scope::kSubtree;
        request.filter = Filter::Equality("sn", "Stress");
        auto result = backend.Search(request);
        ASSERT_TRUE(result.ok());
        ASSERT_EQ(result->entries.size(), static_cast<size_t>(kPersons));
        for (const Entry& found : result->entries) {
          CheckStamps(found, "Search");
        }

        // Whole-directory observations agree with themselves.
        Backend::SnapshotPtr snapshot = backend.GetSnapshot();
        size_t counted = 0;
        Backend::ForEachEntry(*snapshot, [&counted](const Entry&) {
          ++counted;
          return true;
        });
        ASSERT_EQ(counted, snapshot->entry_count);
        ++round;
      }
    });
  }

  writer.join();
  for (std::thread& reader : readers) reader.join();

  // Post-storm: tree and index still agree.
  EXPECT_EQ(backend.Size(), static_cast<size_t>(kPersons) + 2);
  SearchRequest request;
  request.base = Dn::Root();
  request.scope = Scope::kSubtree;
  request.filter = Filter::Equality("stamp", "v0");
  auto unmodified = backend.Search(request);
  ASSERT_TRUE(unmodified.ok());
  for (const Entry& entry : unmodified->entries) {
    CheckStamps(entry, "final");
  }
  Backend::ReadStats stats = backend.read_stats();
  EXPECT_GT(stats.searches, 0u);
  EXPECT_GT(stats.indexed_plans, 0u);
}

TEST(SnapshotStressTest, HeldSnapshotIsImmutableAcrossLaterWrites) {
  Backend backend;
  Entry suffix(MustParse("o=Lucent"));
  suffix.SetOne("o", "Lucent");
  ASSERT_TRUE(backend.Add(suffix).ok());
  Entry person(MustParse("cn=Pin,o=Lucent"));
  person.SetOne("cn", "Pin");
  person.SetOne("stamp", "before");
  ASSERT_TRUE(backend.Add(person).ok());

  Backend::SnapshotPtr held = backend.GetSnapshot();
  uint64_t held_version = held->version;

  Modification mod;
  mod.type = Modification::Type::kReplace;
  mod.attribute = "stamp";
  mod.values = {"after"};
  ASSERT_TRUE(backend.Modify(MustParse("cn=Pin,o=Lucent"), {mod}).ok());
  ASSERT_TRUE(backend.Delete(MustParse("cn=Pin,o=Lucent")).ok());

  // The held version still shows the world as it was.
  EXPECT_EQ(held->version, held_version);
  const Backend::TreeNode* pinned =
      Backend::FindNode(*held, MustParse("cn=Pin,o=Lucent"));
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(pinned->entry.GetFirst("stamp"), "before");
  EXPECT_EQ(held->entry_count, 2u);

  // While the live backend has moved on.
  EXPECT_FALSE(backend.Exists(MustParse("cn=Pin,o=Lucent")));
  EXPECT_EQ(backend.Size(), 1u);
}

}  // namespace
}  // namespace metacomm::ldap
