#include <gtest/gtest.h>

#include "core/integrated_schema.h"
#include "core/metacomm.h"

namespace metacomm::core {
namespace {

/// Full-system scenarios covering the paper's update paths.
class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override { Build(SystemConfig{}); }

  void Build(SystemConfig config) {
    auto system = MetaCommSystem::Create(std::move(config));
    ASSERT_TRUE(system.ok()) << system.status();
    system_ = std::move(*system);
  }

  ldap::Entry MustGet(const std::string& dn) {
    ldap::Client client = system_->NewClient();
    auto entry = client.Get(dn);
    EXPECT_TRUE(entry.ok()) << dn << ": " << entry.status();
    return entry.ok() ? *entry : ldap::Entry();
  }

  std::unique_ptr<MetaCommSystem> system_;
};

TEST_F(IntegrationTest, LdapAddProvisionsBothDevices) {
  ASSERT_TRUE(system_
                  ->AddPerson("John Doe",
                              {{"telephoneNumber", "+1 908 582 4567"}})
                  .ok());

  // PBX station created with name and extension.
  auto station = system_->pbx("pbx1")->GetRecord("4567");
  ASSERT_TRUE(station.ok()) << station.status();
  EXPECT_EQ(station->GetFirst("Name"), "John Doe");

  // Mailbox created; its generated SubscriberId flowed back (§5.5).
  auto mailbox = system_->mp("mp1")->GetRecord("4567");
  ASSERT_TRUE(mailbox.ok());
  EXPECT_EQ(mailbox->GetFirst("SubscriberName"), "John Doe");

  ldap::Entry entry = MustGet("cn=John Doe,ou=People,o=Lucent");
  EXPECT_EQ(entry.GetFirst("DefinityExtension"), "4567");
  EXPECT_EQ(entry.GetFirst("MpMailboxNumber"), "4567");
  EXPECT_EQ(entry.GetFirst("MpSubscriberId"),
            mailbox->GetFirst("SubscriberId"));
  EXPECT_TRUE(entry.HasObjectClass(kDefinityUserClass));
  EXPECT_TRUE(entry.HasObjectClass(kMpUserClass));
}

TEST_F(IntegrationTest, LdapModifyPropagatesToDevices) {
  ASSERT_TRUE(system_
                  ->AddPerson("John Doe",
                              {{"telephoneNumber", "+1 908 582 4567"}})
                  .ok());
  ldap::Client client = system_->NewClient();
  ASSERT_TRUE(client
                  .Replace("cn=John Doe,ou=People,o=Lucent", "roomNumber",
                           "3F-112")
                  .ok());
  auto station = system_->pbx("pbx1")->GetRecord("4567");
  ASSERT_TRUE(station.ok());
  EXPECT_EQ(station->GetFirst("Room"), "3F-112");
}

TEST_F(IntegrationTest, PhoneNumberChangeRekeysDevices) {
  // The closure chain of §4.2: telephoneNumber drives the PBX
  // extension and the voice mailbox number.
  ASSERT_TRUE(system_
                  ->AddPerson("John Doe",
                              {{"telephoneNumber", "+1 908 582 4567"}})
                  .ok());
  ldap::Client client = system_->NewClient();
  ASSERT_TRUE(client
                  .Replace("cn=John Doe,ou=People,o=Lucent",
                           "telephoneNumber", "+1 908 582 4999")
                  .ok());

  EXPECT_FALSE(system_->pbx("pbx1")->GetRecord("4567").ok());
  auto station = system_->pbx("pbx1")->GetRecord("4999");
  ASSERT_TRUE(station.ok()) << station.status();
  EXPECT_EQ(station->GetFirst("Name"), "John Doe");

  EXPECT_FALSE(system_->mp("mp1")->GetRecord("4567").ok());
  EXPECT_TRUE(system_->mp("mp1")->GetRecord("4999").ok());

  ldap::Entry entry = MustGet("cn=John Doe,ou=People,o=Lucent");
  EXPECT_EQ(entry.GetFirst("DefinityExtension"), "4999");
  EXPECT_EQ(entry.GetFirst("MpMailboxNumber"), "4999");
}

TEST_F(IntegrationTest, DduPropagatesToDirectoryAndOtherDevice) {
  ASSERT_TRUE(system_
                  ->AddPerson("John Doe",
                              {{"telephoneNumber", "+1 908 582 4567"}})
                  .ok());
  // Direct device update at the PBX terminal.
  ASSERT_TRUE(system_->pbx("pbx1")
                  ->ExecuteCommand("change station 4567 Room 9Z-900")
                  .ok());
  ldap::Entry entry = MustGet("cn=John Doe,ou=People,o=Lucent");
  EXPECT_EQ(entry.GetFirst("roomNumber"), "9Z-900");
  EXPECT_EQ(entry.GetFirst(kLastUpdaterAttr), "pbx1");
  // The update was reapplied to the originator (write-write
  // convergence, §4.4/§5.4).
  EXPECT_GE(system_->update_manager().stats().reapplications, 1u);
}

TEST_F(IntegrationTest, DduNameChangeRenamesDirectoryEntry) {
  // A PBX name change renames the person entry — the ModifyRDN/Modify
  // pair of §5.1 — and follows through to the messaging platform.
  ASSERT_TRUE(system_
                  ->AddPerson("John Doe",
                              {{"telephoneNumber", "+1 908 582 4567"}})
                  .ok());
  ASSERT_TRUE(system_->pbx("pbx1")
                  ->ExecuteCommand(
                      "change station 4567 Name \"John Q Doe\"")
                  .ok());

  ldap::Client client = system_->NewClient();
  EXPECT_FALSE(client.Get("cn=John Doe,ou=People,o=Lucent").ok());
  ldap::Entry entry = MustGet("cn=John Q Doe,ou=People,o=Lucent");
  EXPECT_EQ(entry.GetFirst("DefinityExtension"), "4567");
  EXPECT_GE(system_->ldap_filter().pair_operations(), 1u);

  auto mailbox = system_->mp("mp1")->GetRecord("4567");
  ASSERT_TRUE(mailbox.ok());
  EXPECT_EQ(mailbox->GetFirst("SubscriberName"), "John Q Doe");
}

TEST_F(IntegrationTest, MpDduFlowsToDirectory) {
  ASSERT_TRUE(system_
                  ->AddPerson("John Doe",
                              {{"telephoneNumber", "+1 908 582 4567"}})
                  .ok());
  ASSERT_TRUE(system_->mp("mp1")
                  ->ExecuteCommand("MODIFY MAILBOX 4567 Pin=8642")
                  .ok());
  ldap::Entry entry = MustGet("cn=John Doe,ou=People,o=Lucent");
  EXPECT_EQ(entry.GetFirst("MpPin"), "8642");
  EXPECT_EQ(entry.GetFirst(kLastUpdaterAttr), "mp1");
}

TEST_F(IntegrationTest, LdapDeleteDeprovisionsDevices) {
  ASSERT_TRUE(system_
                  ->AddPerson("John Doe",
                              {{"telephoneNumber", "+1 908 582 4567"}})
                  .ok());
  ldap::Client client = system_->NewClient();
  ASSERT_TRUE(client.Delete("cn=John Doe,ou=People,o=Lucent").ok());
  EXPECT_EQ(system_->pbx("pbx1")->StationCount(), 0u);
  EXPECT_EQ(system_->mp("mp1")->MailboxCount(), 0u);
}

TEST_F(IntegrationTest, DeviceDeleteDeprovisionsEverywhere) {
  ASSERT_TRUE(system_
                  ->AddPerson("John Doe",
                              {{"telephoneNumber", "+1 908 582 4567"}})
                  .ok());
  ASSERT_TRUE(
      system_->pbx("pbx1")->ExecuteCommand("remove station 4567").ok());
  // Deletes propagate symmetrically: removing the station deprovisions
  // the person in the directory and on the messaging platform, the
  // mirror image of LdapDeleteDeprovisionsDevices.
  ldap::Client client = system_->NewClient();
  EXPECT_EQ(client.Get("cn=John Doe,ou=People,o=Lucent").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(system_->mp("mp1")->MailboxCount(), 0u);
}

TEST_F(IntegrationTest, PartitionMoveBetweenTwoPbxs) {
  // Two switches with disjoint dial plans: moving a phone number from
  // one partition to the other becomes delete+add (§4.2).
  SystemConfig config;
  config.pbxs = {
      PbxMappingParams{.name = "pbx9", .extension_prefix = "9",
                       .phone_prefix = "+1 908 582 "},
      PbxMappingParams{.name = "pbx5", .extension_prefix = "5",
                       .phone_prefix = "+1 908 582 "},
  };
  Build(config);

  ASSERT_TRUE(system_
                  ->AddPerson("Jill Lu",
                              {{"telephoneNumber", "+1 908 582 9123"}})
                  .ok());
  EXPECT_TRUE(system_->pbx("pbx9")->GetRecord("9123").ok());
  EXPECT_EQ(system_->pbx("pbx5")->StationCount(), 0u);

  ldap::Client client = system_->NewClient();
  ASSERT_TRUE(client
                  .Replace("cn=Jill Lu,ou=People,o=Lucent",
                           "telephoneNumber", "+1 908 582 5123")
                  .ok());
  EXPECT_EQ(system_->pbx("pbx9")->StationCount(), 0u);
  auto moved = system_->pbx("pbx5")->GetRecord("5123");
  ASSERT_TRUE(moved.ok()) << moved.status();
  EXPECT_EQ(moved->GetFirst("Name"), "Jill Lu");
}

TEST_F(IntegrationTest, FailedDeviceUpdateLogsErrorAndNotifiesAdmin) {
  ASSERT_TRUE(system_
                  ->AddPerson("John Doe",
                              {{"telephoneNumber", "+1 908 582 4567"}})
                  .ok());
  std::vector<std::string> admin_errors;
  system_->update_manager().set_admin_callback(
      [&admin_errors](const Status& error,
                      const lexpress::UpdateDescriptor&) {
        admin_errors.push_back(error.ToString());
      });

  system_->mp("mp1")->faults().FailNext(1);
  ldap::Client client = system_->NewClient();
  ASSERT_TRUE(client
                  .Replace("cn=John Doe,ou=People,o=Lucent", "roomNumber",
                           "1B-1")
                  .ok());

  EXPECT_FALSE(admin_errors.empty());
  EXPECT_GE(system_->update_manager().stats().errors, 1u);
  // "The administrator can browse through the errors" — they live in
  // the directory under cn=errors (§4.4).
  auto errors = client.Search("cn=errors,o=Lucent",
                              "(objectClass=metacommError)");
  ASSERT_TRUE(errors.ok());
  // The container itself plus at least one error entry.
  EXPECT_GE(errors->size(), 2u);
}

TEST_F(IntegrationTest, ClientUpdatesWaitDuringQuiesce) {
  ASSERT_TRUE(system_
                  ->AddPerson("John Doe",
                              {{"telephoneNumber", "+1 908 582 4567"}})
                  .ok());
  // Drop the device and lose a direct update.
  system_->pbx("pbx1")->faults().set_drop_notifications(true);
  ASSERT_TRUE(system_->pbx("pbx1")
                  ->ExecuteCommand("change station 4567 Room LOST-1")
                  .ok());
  system_->pbx("pbx1")->faults().set_drop_notifications(false);

  // Directory is now stale.
  ldap::Client client = system_->NewClient();
  auto entry = client.Get("cn=John Doe,ou=People,o=Lucent");
  ASSERT_TRUE(entry.ok());
  EXPECT_NE(entry->GetFirst("roomNumber"), "LOST-1");

  // Resynchronize: device wins for its fields (§4.4).
  ASSERT_TRUE(system_->update_manager().Synchronize("pbx1").ok());
  entry = client.Get("cn=John Doe,ou=People,o=Lucent");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->GetFirst("roomNumber"), "LOST-1");
}

TEST_F(IntegrationTest, SagaUndoRevertsAppliedDeviceUpdates) {
  SystemConfig config;
  config.um.saga_undo = true;
  Build(config);
  ASSERT_TRUE(system_
                  ->AddPerson("John Doe",
                              {{"telephoneNumber", "+1 908 582 4567"}})
                  .ok());

  // The PBX (first filter) applies, then the MP fails: the PBX change
  // must be compensated.
  system_->mp("mp1")->faults().FailNext(1);
  ldap::Client client = system_->NewClient();
  ASSERT_TRUE(client
                  .Replace("cn=John Doe,ou=People,o=Lucent",
                           "telephoneNumber", "+1 908 582 4999")
                  .ok());

  // Saga compensation put the station back on 4567.
  auto station = system_->pbx("pbx1")->GetRecord("4567");
  EXPECT_TRUE(station.ok()) << station.status();
  EXPECT_FALSE(system_->pbx("pbx1")->GetRecord("4999").ok());
  EXPECT_GE(system_->update_manager().stats().undos, 1u);
}

TEST_F(IntegrationTest, InconsistentExplicitUpdateFirstMappingWins) {
  // The paper's §4.2 conflict example, end to end: a client explicitly
  // sets telephoneNumber AND DefinityExtension to inconsistent values
  // in one atomic Modify. Neither explicit value may be changed; the
  // first mapping in the closure (telephoneNumber -> Extension) feeds
  // the PBX, and DefinityExtension "retains its new value" without
  // propagating further.
  ASSERT_TRUE(system_
                  ->AddPerson("John Doe",
                              {{"telephoneNumber", "+1 908 582 4567"}})
                  .ok());
  ldap::Client client = system_->NewClient();
  std::vector<ldap::Modification> mods;
  ldap::Modification phone;
  phone.type = ldap::Modification::Type::kReplace;
  phone.attribute = "telephoneNumber";
  phone.values = {"+1 908 582 4111"};
  mods.push_back(phone);
  ldap::Modification extension;
  extension.type = ldap::Modification::Type::kReplace;
  extension.attribute = "DefinityExtension";
  extension.values = {"4222"};  // Inconsistent with the number!
  mods.push_back(extension);
  ASSERT_TRUE(
      client.Modify("cn=John Doe,ou=People,o=Lucent", std::move(mods))
          .ok());

  ldap::Entry entry = MustGet("cn=John Doe,ou=People,o=Lucent");
  EXPECT_EQ(entry.GetFirst("telephoneNumber"), "+1 908 582 4111");
  EXPECT_EQ(entry.GetFirst("DefinityExtension"), "4222");  // Retained.
  // The PBX followed the FIRST mapping: extension from the number.
  EXPECT_TRUE(system_->pbx("pbx1")->GetRecord("4111").ok());
  EXPECT_FALSE(system_->pbx("pbx1")->GetRecord("4222").ok());
}

TEST_F(IntegrationTest, LdapRenamePropagatesToDevices) {
  ASSERT_TRUE(system_
                  ->AddPerson("John Doe",
                              {{"telephoneNumber", "+1 908 582 4567"}})
                  .ok());
  ldap::Client client = system_->NewClient();
  ASSERT_TRUE(client
                  .ModifyRdn("cn=John Doe,ou=People,o=Lucent",
                             "cn=John Q Doe")
                  .ok());
  auto station = system_->pbx("pbx1")->GetRecord("4567");
  ASSERT_TRUE(station.ok());
  EXPECT_EQ(station->GetFirst("Name"), "John Q Doe");
  auto mailbox = system_->mp("mp1")->GetRecord("4567");
  ASSERT_TRUE(mailbox.ok());
  EXPECT_EQ(mailbox->GetFirst("SubscriberName"), "John Q Doe");
}

TEST_F(IntegrationTest, MappingValidationDetectsBadCycles) {
  // The generated standard mappings must validate.
  EXPECT_TRUE(system_->update_manager().ValidateMappings().ok());
}

TEST_F(IntegrationTest, StatsAccounting) {
  ASSERT_TRUE(system_
                  ->AddPerson("A B", {{"telephoneNumber",
                                       "+1 908 582 1111"}})
                  .ok());
  ASSERT_TRUE(system_->pbx("pbx1")
                  ->ExecuteCommand("change station 1111 Room R-1")
                  .ok());
  auto stats = system_->update_manager().stats();
  EXPECT_EQ(stats.ldap_updates, 1u);
  EXPECT_EQ(stats.device_updates, 1u);
  EXPECT_GE(stats.device_applies, 3u);
  EXPECT_EQ(stats.errors, 0u);
}

}  // namespace
}  // namespace metacomm::core
