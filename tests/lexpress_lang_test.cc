#include <gtest/gtest.h>

#include "lexpress/lexer.h"
#include "lexpress/parser.h"

namespace metacomm::lexpress {
namespace {

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("mapping X from a to b { }");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 9u);  // 6 identifiers, braces, end.
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[0].text, "mapping");
  EXPECT_EQ((*tokens)[6].kind, TokenKind::kLeftBrace);
  EXPECT_EQ((*tokens)[8].kind, TokenKind::kEnd);
}

TEST(LexerTest, StringsWithEscapes) {
  auto tokens = Tokenize("\"a \\\"quoted\\\" string\"");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[0].text, "a \"quoted\" string");
}

TEST(LexerTest, CommentsIgnored) {
  auto tokens = Tokenize("abc # comment -> \"string\"\ndef");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);
  EXPECT_EQ((*tokens)[1].text, "def");
  EXPECT_EQ((*tokens)[1].line, 2);
}

TEST(LexerTest, OperatorsAndNumbers) {
  auto tokens = Tokenize("-> == != = -4 42 ( ) , ;");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kArrow);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kEqualsEquals);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kNotEquals);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kEquals);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kInteger);
  EXPECT_EQ((*tokens)[4].text, "-4");
  EXPECT_EQ((*tokens)[5].text, "42");
}

TEST(LexerTest, UnterminatedString) {
  EXPECT_FALSE(Tokenize("\"never closed").ok());
}

TEST(LexerTest, UnexpectedCharacter) {
  EXPECT_FALSE(Tokenize("@").ok());
}

constexpr char kFullMapping[] = R"(
# Maps Definity stations into the integrated directory.
mapping PbxToLdap from pbx to ldap {
  option target_name = "ldap";
  option originator = "LastUpdater";
  option allow_cycles = true;

  table CosClass {
    "1" -> "standard";
    "2" -> "gold";
    default -> "custom";
  }

  partition when prefix(Extension, "9");

  key Extension -> DefinityExtension;
  map concat("+1 908 582 ", Extension) -> telephoneNumber;
  map Name -> cn;
  map surname(Name) -> sn when contains(Name, " ");
  map first(lookup(CosClass, Cos)) -> employeeType;
}
)";

TEST(ParserTest, FullMapping) {
  auto decls = ParseMappings(kFullMapping);
  ASSERT_TRUE(decls.ok()) << decls.status();
  ASSERT_EQ(decls->size(), 1u);
  const MappingDecl& decl = (*decls)[0];
  EXPECT_EQ(decl.name, "PbxToLdap");
  EXPECT_EQ(decl.source_schema, "pbx");
  EXPECT_EQ(decl.target_schema, "ldap");
  EXPECT_EQ(decl.options.at("target_name"), "ldap");
  EXPECT_EQ(decl.options.at("originator"), "LastUpdater");
  EXPECT_EQ(decl.options.at("allow_cycles"), "true");
  ASSERT_EQ(decl.tables.size(), 1u);
  EXPECT_EQ(decl.tables[0].entries.at("1"), "standard");
  ASSERT_TRUE(decl.tables[0].default_value.has_value());
  EXPECT_EQ(*decl.tables[0].default_value, "custom");
  ASSERT_TRUE(decl.partition.has_value());
  ASSERT_EQ(decl.rules.size(), 5u);
  EXPECT_TRUE(decl.rules[0].is_key);
  EXPECT_EQ(decl.rules[0].target_attr, "DefinityExtension");
  EXPECT_FALSE(decl.rules[1].is_key);
  EXPECT_EQ(decl.rules[1].expr.kind, Expr::Kind::kCall);
  EXPECT_EQ(decl.rules[1].expr.text, "concat");
  ASSERT_TRUE(decl.rules[3].guard.has_value());
  EXPECT_EQ(decl.rules[3].guard->text, "contains");
}

TEST(ParserTest, MultipleMappings) {
  auto decls = ParseMappings(
      "mapping A from x to y { map a -> b; }\n"
      "mapping B from y to x { map b -> a; }\n");
  ASSERT_TRUE(decls.ok());
  EXPECT_EQ(decls->size(), 2u);
}

TEST(ParserTest, PredicatePrecedence) {
  auto decls = ParseMappings(
      "mapping P from x to y {"
      "  map a -> b when present(a) and present(c) or not present(d);"
      "}");
  ASSERT_TRUE(decls.ok()) << decls.status();
  const Expr& guard = *(*decls)[0].rules[0].guard;
  // or(and(present(a), present(c)), not(present(d)))
  EXPECT_EQ(guard.text, "or");
  ASSERT_EQ(guard.args.size(), 2u);
  EXPECT_EQ(guard.args[0].text, "and");
  EXPECT_EQ(guard.args[1].text, "not");
}

TEST(ParserTest, ComparisonOperators) {
  auto decls = ParseMappings(
      "mapping P from x to y { map a -> b when a == \"1\" and c != d; }");
  ASSERT_TRUE(decls.ok()) << decls.status();
  const Expr& guard = *(*decls)[0].rules[0].guard;
  EXPECT_EQ(guard.text, "and");
  EXPECT_EQ(guard.args[0].text, "eq");
  EXPECT_EQ(guard.args[1].text, "ne");
}

TEST(ParserTest, ParenthesizedPredicate) {
  auto decls = ParseMappings(
      "mapping P from x to y {"
      "  map a -> b when present(a) and (present(b) or present(c));"
      "}");
  ASSERT_TRUE(decls.ok()) << decls.status();
  const Expr& guard = *(*decls)[0].rules[0].guard;
  EXPECT_EQ(guard.text, "and");
  EXPECT_EQ(guard.args[1].text, "or");
}

TEST(ParserTest, MultiplePartitionClausesAndTogether) {
  auto decls = ParseMappings(
      "mapping P from x to y {"
      "  partition when present(a);"
      "  partition when present(b);"
      "  map a -> b;"
      "}");
  ASSERT_TRUE(decls.ok());
  ASSERT_TRUE((*decls)[0].partition.has_value());
  EXPECT_EQ((*decls)[0].partition->text, "and");
}


TEST(ParserTest, DepthGuardRejectsPathologicalNesting) {
  std::string deep = "mapping P from a to b { map ";
  for (int i = 0; i < 500; ++i) deep += "not (";
  deep += "present(x)";
  for (int i = 0; i < 500; ++i) deep += ")";
  deep += " -> out; }";
  EXPECT_FALSE(ParseMappings(deep).ok());

  std::string ok = "mapping P from a to b { map ";
  for (int i = 0; i < 30; ++i) ok += "not (";
  ok += "present(x)";
  for (int i = 0; i < 30; ++i) ok += ")";
  ok += " -> out; }";
  EXPECT_TRUE(ParseMappings(ok).ok()) << ParseMappings(ok).status();
}

struct BadSource {
  const char* source;
  const char* why;
};

class ParserErrorTest : public ::testing::TestWithParam<BadSource> {};

TEST_P(ParserErrorTest, Rejected) {
  auto decls = ParseMappings(GetParam().source);
  EXPECT_FALSE(decls.ok()) << GetParam().why;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParserErrorTest,
    ::testing::Values(
        BadSource{"", "empty source"},
        BadSource{"mapping X from a { }", "missing 'to'"},
        BadSource{"mapping X from a to b { map a b; }", "missing arrow"},
        BadSource{"mapping X from a to b { map a -> ; }",
                  "missing target"},
        BadSource{"mapping X from a to b { map a -> b }",
                  "missing semicolon"},
        BadSource{"mapping X from a to b { bogus x; }",
                  "unknown item keyword"},
        BadSource{"mapping X from a to b { option k; }",
                  "option missing value"},
        BadSource{"mapping X from a to b { table T { \"a\" -> ; } }",
                  "table missing value"},
        BadSource{"mapping X from a to b { map f( -> b; }",
                  "unterminated call"},
        BadSource{"mapping X from a to b {", "unterminated block"}));

}  // namespace
}  // namespace metacomm::lexpress
