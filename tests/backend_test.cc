#include "ldap/backend.h"

#include <gtest/gtest.h>

namespace metacomm::ldap {
namespace {

Dn MustParse(const char* text) {
  auto dn = Dn::Parse(text);
  EXPECT_TRUE(dn.ok()) << text;
  return *dn;
}

Entry Container(const char* dn_text, const char* attr, const char* value) {
  Entry entry(MustParse(dn_text));
  entry.AddObjectClass("top");
  entry.SetOne(attr, value);
  return entry;
}

Entry Person(const char* dn_text, const char* cn) {
  Entry entry(MustParse(dn_text));
  entry.AddObjectClass("top");
  entry.AddObjectClass("person");
  entry.SetOne("cn", cn);
  entry.SetOne("sn", "X");
  return entry;
}

class BackendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(backend_.Add(Container("o=Lucent", "o", "Lucent")).ok());
    ASSERT_TRUE(
        backend_.Add(Container("o=Marketing,o=Lucent", "o", "Marketing"))
            .ok());
  }

  Backend backend_;  // Schema-less for these tests.
};

TEST_F(BackendTest, AddAndGet) {
  Entry person = Person("cn=John Doe,o=Marketing,o=Lucent", "John Doe");
  ASSERT_TRUE(backend_.Add(person).ok());
  auto fetched = backend_.Get(MustParse("cn=John Doe,o=Marketing,o=Lucent"));
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched->GetFirst("cn"), "John Doe");
  EXPECT_EQ(backend_.Size(), 3u);
}

TEST_F(BackendTest, AddRequiresParent) {
  Entry orphan = Person("cn=X,o=Nowhere,o=Lucent", "X");
  EXPECT_EQ(backend_.Add(orphan).code(), StatusCode::kNotFound);
}

TEST_F(BackendTest, AddDuplicateFails) {
  Entry person = Person("cn=John,o=Lucent", "John");
  ASSERT_TRUE(backend_.Add(person).ok());
  EXPECT_EQ(backend_.Add(person).code(), StatusCode::kAlreadyExists);
  // DN matching is case-insensitive.
  Entry shouty = Person("CN=JOHN,O=LUCENT", "JOHN");
  EXPECT_EQ(backend_.Add(shouty).code(), StatusCode::kAlreadyExists);
}

TEST_F(BackendTest, DeleteLeafOnly) {
  // o=Marketing has no children yet: deletable. o=Lucent has one.
  EXPECT_EQ(backend_.Delete(MustParse("o=Lucent")).code(),
            StatusCode::kSchemaViolation);
  EXPECT_TRUE(backend_.Delete(MustParse("o=Marketing,o=Lucent")).ok());
  EXPECT_EQ(backend_.Delete(MustParse("o=Marketing,o=Lucent")).code(),
            StatusCode::kNotFound);
}

TEST_F(BackendTest, ModifyReplaceAddDelete) {
  ASSERT_TRUE(backend_.Add(Person("cn=Jill,o=Lucent", "Jill")).ok());
  Dn dn = MustParse("cn=Jill,o=Lucent");

  Modification replace;
  replace.type = Modification::Type::kReplace;
  replace.attribute = "telephoneNumber";
  replace.values = {"+1 908 582 9000"};
  ASSERT_TRUE(backend_.Modify(dn, {replace}).ok());

  Modification add;
  add.type = Modification::Type::kAdd;
  add.attribute = "telephoneNumber";
  add.values = {"+1 908 582 9001"};
  ASSERT_TRUE(backend_.Modify(dn, {add}).ok());
  auto entry = backend_.Get(dn);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->GetAll("telephoneNumber").size(), 2u);

  Modification remove_one;
  remove_one.type = Modification::Type::kDelete;
  remove_one.attribute = "telephoneNumber";
  remove_one.values = {"+1 908 582 9000"};
  ASSERT_TRUE(backend_.Modify(dn, {remove_one}).ok());

  Modification remove_all;
  remove_all.type = Modification::Type::kDelete;
  remove_all.attribute = "telephoneNumber";
  ASSERT_TRUE(backend_.Modify(dn, {remove_all}).ok());
  entry = backend_.Get(dn);
  ASSERT_TRUE(entry.ok());
  EXPECT_FALSE(entry->Has("telephoneNumber"));
}

TEST_F(BackendTest, ModifySequenceIsAtomic) {
  ASSERT_TRUE(backend_.Add(Person("cn=Jill,o=Lucent", "Jill")).ok());
  Dn dn = MustParse("cn=Jill,o=Lucent");
  // Second modification fails (deleting a missing attribute), so the
  // first must not be applied either: per-entry atomicity is the one
  // guarantee LDAP gives (§5.1).
  Modification good;
  good.type = Modification::Type::kReplace;
  good.attribute = "roomNumber";
  good.values = {"2C-401"};
  Modification bad;
  bad.type = Modification::Type::kDelete;
  bad.attribute = "mail";
  EXPECT_FALSE(backend_.Modify(dn, {good, bad}).ok());
  auto entry = backend_.Get(dn);
  ASSERT_TRUE(entry.ok());
  EXPECT_FALSE(entry->Has("roomNumber"));
}

TEST_F(BackendTest, ModifyCannotTouchRdnValues) {
  ASSERT_TRUE(backend_.Add(Person("cn=Jill,o=Lucent", "Jill")).ok());
  Dn dn = MustParse("cn=Jill,o=Lucent");
  Modification replace;
  replace.type = Modification::Type::kReplace;
  replace.attribute = "cn";
  replace.values = {"Someone Else"};
  // Replacing cn without keeping the RDN value is notAllowedOnRDN.
  EXPECT_EQ(backend_.Modify(dn, {replace}).code(),
            StatusCode::kSchemaViolation);
  // Keeping the RDN value while adding another is fine.
  replace.values = {"Jill", "Jill B."};
  EXPECT_TRUE(backend_.Modify(dn, {replace}).ok());
  Modification del;
  del.type = Modification::Type::kDelete;
  del.attribute = "cn";
  del.values = {"Jill"};
  EXPECT_EQ(backend_.Modify(dn, {del}).code(),
            StatusCode::kSchemaViolation);
}

TEST_F(BackendTest, ModifyRdnRenamesAndRewritesAttributes) {
  ASSERT_TRUE(backend_.Add(Person("cn=Jill,o=Lucent", "Jill")).ok());
  ASSERT_TRUE(
      backend_.ModifyRdn(MustParse("cn=Jill,o=Lucent"), Rdn("cn", "Jill Lu"),
                         /*delete_old_rdn=*/true)
          .ok());
  EXPECT_FALSE(backend_.Exists(MustParse("cn=Jill,o=Lucent")));
  auto entry = backend_.Get(MustParse("cn=Jill Lu,o=Lucent"));
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->GetAll("cn"), std::vector<std::string>{"Jill Lu"});
}

TEST_F(BackendTest, ModifyRdnKeepOldRdnValue) {
  ASSERT_TRUE(backend_.Add(Person("cn=Jill,o=Lucent", "Jill")).ok());
  ASSERT_TRUE(backend_.ModifyRdn(MustParse("cn=Jill,o=Lucent"),
                                 Rdn("cn", "Jill Lu"),
                                 /*delete_old_rdn=*/false)
                  .ok());
  auto entry = backend_.Get(MustParse("cn=Jill Lu,o=Lucent"));
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->GetAll("cn").size(), 2u);
}

TEST_F(BackendTest, ModifyRdnCollision) {
  ASSERT_TRUE(backend_.Add(Person("cn=A,o=Lucent", "A")).ok());
  ASSERT_TRUE(backend_.Add(Person("cn=B,o=Lucent", "B")).ok());
  EXPECT_EQ(backend_.ModifyRdn(MustParse("cn=A,o=Lucent"), Rdn("cn", "B"),
                               true)
                .code(),
            StatusCode::kAlreadyExists);
}

TEST_F(BackendTest, ModifyRdnRewritesDescendantDns) {
  ASSERT_TRUE(
      backend_.Add(Container("ou=Dept,o=Marketing,o=Lucent", "ou", "Dept"))
          .ok());
  ASSERT_TRUE(
      backend_.Add(Person("cn=X,ou=Dept,o=Marketing,o=Lucent", "X")).ok());
  ASSERT_TRUE(backend_.ModifyRdn(MustParse("o=Marketing,o=Lucent"),
                                 Rdn("o", "Sales"), true)
                  .ok());
  EXPECT_TRUE(backend_.Exists(MustParse("cn=X,ou=Dept,o=Sales,o=Lucent")));
  EXPECT_FALSE(backend_.Exists(MustParse("cn=X,ou=Dept,o=Marketing,o=Lucent")));
  // Index follows the rename.
  SearchRequest request;
  request.base = MustParse("o=Lucent");
  request.filter = Filter::Equality("cn", "X");
  auto result = backend_.Search(request);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->entries.size(), 1u);
  EXPECT_EQ(result->entries[0].dn().ToString(),
            "cn=X,ou=Dept,o=Sales,o=Lucent");
}

TEST_F(BackendTest, SearchScopes) {
  ASSERT_TRUE(backend_.Add(Person("cn=A,o=Lucent", "A")).ok());
  ASSERT_TRUE(backend_.Add(Person("cn=B,o=Marketing,o=Lucent", "B")).ok());

  SearchRequest base;
  base.base = MustParse("o=Lucent");
  base.scope = Scope::kBase;
  base.filter = Filter::Present("o");
  auto r = backend_.Search(base);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->entries.size(), 1u);

  SearchRequest one;
  one.base = MustParse("o=Lucent");
  one.scope = Scope::kOneLevel;
  one.filter = Filter::Present("objectClass");
  r = backend_.Search(one);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->entries.size(), 2u);  // cn=A and o=Marketing; not o=Lucent.

  SearchRequest sub;
  sub.base = MustParse("o=Lucent");
  sub.scope = Scope::kSubtree;
  sub.filter = Filter::Present("cn");
  r = backend_.Search(sub);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->entries.size(), 2u);  // cn=A, cn=B.
}

TEST_F(BackendTest, SearchFromVirtualRoot) {
  ASSERT_TRUE(backend_.Add(Container("o=Acme", "o", "Acme")).ok());
  SearchRequest request;
  request.base = Dn::Root();
  request.scope = Scope::kSubtree;
  request.filter = Filter::Present("o");
  auto r = backend_.Search(request);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->entries.size(), 3u);  // Lucent, Marketing, Acme.
}

TEST_F(BackendTest, SearchNoSuchBase) {
  SearchRequest request;
  request.base = MustParse("o=Nowhere");
  auto r = backend_.Search(request);
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(BackendTest, SearchSizeLimit) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(backend_
                    .Add(Person(("cn=P" + std::to_string(i) + ",o=Lucent")
                                    .c_str(),
                                "P"))
                    .ok());
  }
  SearchRequest request;
  request.base = MustParse("o=Lucent");
  request.filter = Filter::Equality("sn", "X");
  request.size_limit = 5;
  auto r = backend_.Search(request);
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(BackendTest, AttributeProjection) {
  Entry person = Person("cn=Jill,o=Lucent", "Jill");
  person.SetOne("telephoneNumber", "+1 908 582 9000");
  ASSERT_TRUE(backend_.Add(person).ok());
  SearchRequest request;
  request.base = MustParse("cn=Jill,o=Lucent");
  request.scope = Scope::kBase;
  request.filter = Filter::MatchAll();
  request.attributes = {"cn"};
  auto r = backend_.Search(request);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->entries.size(), 1u);
  EXPECT_TRUE(r->entries[0].Has("cn"));
  EXPECT_FALSE(r->entries[0].Has("telephoneNumber"));
}

TEST_F(BackendTest, EqualityIndexFindsEntries) {
  for (int i = 0; i < 100; ++i) {
    Entry person = Person(
        ("cn=P" + std::to_string(i) + ",o=Lucent").c_str(), "P");
    person.SetOne("telephoneNumber",
                  "+1 908 582 9" + std::to_string(100 + i).substr(0, 3));
    ASSERT_TRUE(backend_.Add(person).ok());
  }
  SearchRequest request;
  request.base = MustParse("o=Lucent");
  request.scope = Scope::kSubtree;
  request.filter = Filter::Equality("telephoneNumber", "+1 908 582 9100");
  auto r = backend_.Search(request);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->entries.size(), 1u);
  EXPECT_EQ(r->entries[0].GetFirst("cn"), "P");
}

TEST_F(BackendTest, IndexMaintainedAcrossModifyAndDelete) {
  Entry person = Person("cn=Jill,o=Lucent", "Jill");
  person.SetOne("roomNumber", "2C-401");
  ASSERT_TRUE(backend_.Add(person).ok());

  Modification replace;
  replace.type = Modification::Type::kReplace;
  replace.attribute = "roomNumber";
  replace.values = {"3F-112"};
  ASSERT_TRUE(backend_.Modify(MustParse("cn=Jill,o=Lucent"), {replace}).ok());

  SearchRequest old_room;
  old_room.base = MustParse("o=Lucent");
  old_room.filter = Filter::Equality("roomNumber", "2C-401");
  auto r = backend_.Search(old_room);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->entries.empty());

  SearchRequest new_room;
  new_room.base = MustParse("o=Lucent");
  new_room.filter = Filter::Equality("roomNumber", "3F-112");
  r = backend_.Search(new_room);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->entries.size(), 1u);

  ASSERT_TRUE(backend_.Delete(MustParse("cn=Jill,o=Lucent")).ok());
  r = backend_.Search(new_room);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->entries.empty());
}

TEST_F(BackendTest, ListenersSeeCommitsInOrder) {
  std::vector<ChangeRecord> seen;
  backend_.AddListener(
      [&seen](const ChangeRecord& record) { seen.push_back(record); });
  ASSERT_TRUE(backend_.Add(Person("cn=A,o=Lucent", "A")).ok());
  Modification mod;
  mod.type = Modification::Type::kReplace;
  mod.attribute = "sn";
  mod.values = {"Y"};
  ASSERT_TRUE(backend_.Modify(MustParse("cn=A,o=Lucent"), {mod}).ok());
  ASSERT_TRUE(backend_.Delete(MustParse("cn=A,o=Lucent")).ok());

  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0].op, UpdateOp::kAdd);
  EXPECT_EQ(seen[1].op, UpdateOp::kModify);
  EXPECT_EQ(seen[2].op, UpdateOp::kDelete);
  EXPECT_LT(seen[0].sequence, seen[1].sequence);
  EXPECT_LT(seen[1].sequence, seen[2].sequence);
  ASSERT_TRUE(seen[1].old_entry.has_value());
  EXPECT_EQ(seen[1].old_entry->GetFirst("sn"), "X");
  ASSERT_TRUE(seen[1].new_entry.has_value());
  EXPECT_EQ(seen[1].new_entry->GetFirst("sn"), "Y");
}

TEST_F(BackendTest, FailedOperationsDoNotNotify) {
  size_t count = 0;
  backend_.AddListener([&count](const ChangeRecord&) { ++count; });
  Entry orphan = Person("cn=X,o=Nowhere", "X");
  EXPECT_FALSE(backend_.Add(orphan).ok());
  EXPECT_EQ(count, 0u);
}

TEST_F(BackendTest, DumpAllParentsFirst) {
  ASSERT_TRUE(backend_.Add(Person("cn=A,o=Marketing,o=Lucent", "A")).ok());
  std::vector<Entry> dump = backend_.DumpAll();
  ASSERT_EQ(dump.size(), 3u);
  // Reloading into a fresh backend must succeed in dump order.
  Backend fresh;
  for (const Entry& entry : dump) {
    EXPECT_TRUE(fresh.Add(entry).ok()) << entry.dn().ToString();
  }
  EXPECT_EQ(fresh.Size(), 3u);
}

}  // namespace
}  // namespace metacomm::ldap
