#include "lexpress/vm.h"

#include <gtest/gtest.h>

#include "lexpress/compiler.h"
#include "lexpress/parser.h"

namespace metacomm::lexpress {
namespace {

/// Compiles a single expression by wrapping it in a one-rule mapping,
/// then runs it against a record.
StatusOr<Value> Eval(const std::string& expr_text, const Record& record,
                     std::vector<TableDef> tables = {}) {
  std::string source =
      "mapping T from a to b { map " + expr_text + " -> out; }";
  auto decls = ParseMappings(source);
  if (!decls.ok()) return decls.status();
  auto program = CompileExpr((*decls)[0].rules[0].expr, tables);
  if (!program.ok()) return program.status();
  return Vm::ExecuteReference(*program, tables, record);
}

Record SampleRecord() {
  Record record("a");
  record.SetOne("Name", "John Doe");
  record.SetOne("Extension", "9000");
  record.SetOne("telephoneNumber", "+1 908 582 9000");
  record.Set("mail", {"jd@lucent.com", "john@lucent.com"});
  record.SetOne("Spacey", "  padded   value ");
  return record;
}

struct EvalCase {
  const char* expr;
  std::vector<std::string> expect;
};

class VmEvalTest : public ::testing::TestWithParam<EvalCase> {};

TEST_P(VmEvalTest, Evaluates) {
  const EvalCase& c = GetParam();
  auto result = Eval(c.expr, SampleRecord());
  ASSERT_TRUE(result.ok()) << c.expr << ": " << result.status();
  EXPECT_EQ(*result, c.expect) << c.expr;
}

INSTANTIATE_TEST_SUITE_P(
    Strings, VmEvalTest,
    ::testing::Values(
        EvalCase{"\"literal\"", {"literal"}},
        EvalCase{"Name", {"John Doe"}},
        EvalCase{"Missing", {}},
        EvalCase{"upper(Name)", {"JOHN DOE"}},
        EvalCase{"lower(Name)", {"john doe"}},
        EvalCase{"trim(Spacey)", {"padded   value"}},
        EvalCase{"normalize(Spacey)", {"padded value"}},
        EvalCase{"digits(telephoneNumber)", {"19085829000"}},
        EvalCase{"surname(Name)", {"Doe"}},
        EvalCase{"givenname(Name)", {"John"}},
        EvalCase{"substr(Extension, 0, 2)", {"90"}},
        EvalCase{"substr(digits(telephoneNumber), -4, 4)", {"9000"}},
        EvalCase{"substr(Extension, 2, 10)", {"00"}},
        EvalCase{"substr(Extension, 9, 1)", {""}},
        EvalCase{"replace(Name, \" \", \"_\")", {"John_Doe"}},
        EvalCase{"split(telephoneNumber, \" \", 1)", {"908"}},
        EvalCase{"split(telephoneNumber, \" \", -1)", {"9000"}},
        EvalCase{"split(telephoneNumber, \" \", 9)", {}},
        EvalCase{"concat(\"x\", Extension)", {"x9000"}},
        EvalCase{"concat(Name, \" <\", mail, \">\")",
                 {"John Doe <jd@lucent.com>",
                  "John Doe <john@lucent.com>"}},
        EvalCase{"format(\"ext %s of %s\", Extension, Name)",
                 {"ext 9000 of John Doe"}},
        EvalCase{"concat(\"a\", Missing)", {}},
        EvalCase{"format(\"+1 908 582 %s\", Extension)",
                 {"+1 908 582 9000"}}));

INSTANTIATE_TEST_SUITE_P(
    Aggregates, VmEvalTest,
    ::testing::Values(
        EvalCase{"first(mail)", {"jd@lucent.com"}},
        EvalCase{"last(mail)", {"john@lucent.com"}},
        EvalCase{"first(Missing)", {}},
        EvalCase{"join(mail, \"; \")",
                 {"jd@lucent.com; john@lucent.com"}},
        EvalCase{"count(mail)", {"2"}},
        EvalCase{"count(Missing)", {"0"}},
        EvalCase{"default(Missing, \"fallback\")", {"fallback"}},
        EvalCase{"default(Name, \"fallback\")", {"John Doe"}},
        EvalCase{"ifelse(present(Name), \"yes\", \"no\")", {"yes"}},
        EvalCase{"ifelse(present(Missing), \"yes\", \"no\")", {"no"}}));

INSTANTIATE_TEST_SUITE_P(
    Predicates, VmEvalTest,
    ::testing::Values(
        EvalCase{"present(Name)", {"true"}},
        EvalCase{"present(Missing)", {"false"}},
        EvalCase{"absent(Missing)", {"true"}},
        EvalCase{"prefix(telephoneNumber, \"+1 908\")", {"true"}},
        EvalCase{"prefix(telephoneNumber, \"+1 212\")", {"false"}},
        EvalCase{"prefix(Missing, \"x\")", {"false"}},
        EvalCase{"suffix(Name, \"doe\")", {"true"}},
        EvalCase{"matches(Name, \"John*\")", {"true"}},
        EvalCase{"matches(Name, \"J?hn Doe\")", {"true"}},
        EvalCase{"matches(Name, \"Jane*\")", {"false"}},
        EvalCase{"matches(mail, \"*lucent.com\")", {"true"}},
        EvalCase{"contains(Name, \"hn D\")", {"true"}},
        EvalCase{"contains(Name, \"xyz\")", {"false"}},
        EvalCase{"Name == \"john doe\"", {"true"}},
        EvalCase{"Name != \"john doe\"", {"false"}},
        EvalCase{"Extension == \"9001\"", {"false"}},
        EvalCase{"present(Name) and present(Extension)", {"true"}},
        EvalCase{"present(Missing) or present(Name)", {"true"}},
        EvalCase{"not present(Missing)", {"true"}},
        EvalCase{"not (present(Name) and absent(Name))", {"true"}}));

TEST(VmTest, LookupTable) {
  TableDef table;
  table.name = "Cos";
  table.entries["1"] = "standard";
  table.entries["2"] = "gold";
  table.default_value = "custom";

  Record record("a");
  record.SetOne("Cos", "2");
  auto result = Eval("lookup(Cos, Cos)", record, {table});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(*result, Value{"gold"});

  record.SetOne("Cos", "7");
  result = Eval("lookup(Cos, Cos)", record, {table});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, Value{"custom"});
}

TEST(VmTest, LookupWithoutDefaultDropsValue) {
  TableDef table;
  table.name = "T";
  table.entries["known"] = "mapped";
  Record record("a");
  record.Set("x", {"known", "unknown"});
  auto result = Eval("lookup(T, x)", record, {table});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, Value{"mapped"});
}

TEST(VmTest, UnknownTableIsCompileError) {
  Record record("a");
  auto result = Eval("lookup(NoSuchTable, Name)", record);
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(VmTest, UnknownFunctionIsCompileError) {
  auto result = Eval("frobnicate(Name)", SampleRecord());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(VmTest, WrongArityIsCompileError) {
  auto result = Eval("substr(Name)", SampleRecord());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(VmTest, SubstrNonIntegerIsRuntimeError) {
  auto result = Eval("substr(Name, Name, 2)", SampleRecord());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(VmTest, ElementwiseOverMultiValued) {
  auto result = Eval("upper(mail)", SampleRecord());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, (Value{"JD@LUCENT.COM", "JOHN@LUCENT.COM"}));
}

TEST(VmTest, GuardSemantics) {
  std::string source =
      "mapping T from a to b { map Name -> out when present(Name); }";
  auto decls = ParseMappings(source);
  ASSERT_TRUE(decls.ok());
  auto rule = CompileRule((*decls)[0].rules[0], {});
  ASSERT_TRUE(rule.ok());
  auto held = Vm::ExecuteGuardReference(rule->guard, {}, SampleRecord());
  ASSERT_TRUE(held.ok());
  EXPECT_TRUE(*held);
  Record empty("a");
  held = Vm::ExecuteGuardReference(rule->guard, {}, empty);
  ASSERT_TRUE(held.ok());
  EXPECT_FALSE(*held);
  // An empty guard program always holds.
  Program none;
  held = Vm::ExecuteGuardReference(none, {}, empty);
  ASSERT_TRUE(held.ok());
  EXPECT_TRUE(*held);
}

TEST(VmTest, DependencyExtraction) {
  std::string source =
      "mapping T from a to b {"
      "  map concat(x, lookup(Tbl, y)) -> out when present(z);"
      "  table Tbl { \"a\" -> \"b\"; }"
      "}";
  auto decls = ParseMappings(source);
  ASSERT_TRUE(decls.ok()) << decls.status();
  auto rule = CompileRule((*decls)[0].rules[0], (*decls)[0].tables);
  ASSERT_TRUE(rule.ok()) << rule.status();
  EXPECT_EQ(rule->source_attrs.size(), 3u);
  EXPECT_TRUE(rule->source_attrs.count("x"));
  EXPECT_TRUE(rule->source_attrs.count("y"));
  EXPECT_TRUE(rule->source_attrs.count("z"));
  EXPECT_FALSE(rule->source_attrs.count("Tbl"));  // Table, not attr.
  EXPECT_FALSE(rule->identity);
}

TEST(VmTest, IdentityDetection) {
  auto decls = ParseMappings(
      "mapping T from a to b {"
      "  map x -> out;"
      "  map upper(x) -> out2;"
      "  map x -> out3 when present(y);"
      "}");
  ASSERT_TRUE(decls.ok());
  auto r0 = CompileRule((*decls)[0].rules[0], {});
  auto r1 = CompileRule((*decls)[0].rules[1], {});
  auto r2 = CompileRule((*decls)[0].rules[2], {});
  ASSERT_TRUE(r0.ok() && r1.ok() && r2.ok());
  EXPECT_TRUE(r0->identity);
  EXPECT_FALSE(r1->identity);
  EXPECT_FALSE(r2->identity);  // Guarded copies are not identity.
}

}  // namespace
}  // namespace metacomm::lexpress
