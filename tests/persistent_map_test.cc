#include "common/persistent_map.h"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace metacomm {
namespace {

using Entries = std::vector<std::pair<std::string, int>>;

Entries Collect(const PersistentMap<int>& map) {
  Entries out;
  map.ForEach([&out](const std::string& key, int value) {
    out.emplace_back(key, value);
    return true;
  });
  return out;
}

TEST(PersistentMapTest, EmptyMap) {
  PersistentMap<int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.Find("anything"), nullptr);
  EXPECT_TRUE(Collect(map).empty());
}

TEST(PersistentMapTest, InsertFindErase) {
  PersistentMap<int> map;
  map = map.Insert("b", 2).Insert("a", 1).Insert("c", 3);
  EXPECT_EQ(map.size(), 3u);
  ASSERT_NE(map.Find("a"), nullptr);
  EXPECT_EQ(*map.Find("a"), 1);
  EXPECT_EQ(*map.Find("b"), 2);
  EXPECT_EQ(*map.Find("c"), 3);
  EXPECT_EQ(map.Find("d"), nullptr);

  map = map.Erase("b");
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.Find("b"), nullptr);
  EXPECT_NE(map.Find("a"), nullptr);
  EXPECT_NE(map.Find("c"), nullptr);
}

TEST(PersistentMapTest, InsertOverwrites) {
  PersistentMap<int> map;
  map = map.Insert("k", 1);
  map = map.Insert("k", 2);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(*map.Find("k"), 2);
}

TEST(PersistentMapTest, EraseMissingIsNoop) {
  PersistentMap<int> map;
  map = map.Insert("a", 1);
  PersistentMap<int> same = map.Erase("zzz");
  EXPECT_EQ(same.size(), 1u);
  EXPECT_EQ(*same.Find("a"), 1);
}

TEST(PersistentMapTest, DerivedMapsLeaveParentsUntouched) {
  // The whole point: a reader holding an old version must never see a
  // writer's derived version.
  PersistentMap<int> v0;
  PersistentMap<int> v1 = v0.Insert("x", 1);
  PersistentMap<int> v2 = v1.Insert("y", 2);
  PersistentMap<int> v3 = v2.Erase("x");
  PersistentMap<int> v4 = v2.Insert("x", 99);

  EXPECT_TRUE(v0.empty());
  EXPECT_EQ(Collect(v1), (Entries{{"x", 1}}));
  EXPECT_EQ(Collect(v2), (Entries{{"x", 1}, {"y", 2}}));
  EXPECT_EQ(Collect(v3), (Entries{{"y", 2}}));
  EXPECT_EQ(Collect(v4), (Entries{{"x", 99}, {"y", 2}}));
}

TEST(PersistentMapTest, IterationIsSortedRegardlessOfInsertionOrder) {
  const std::vector<std::string> keys = {"delta", "alpha",   "echo",
                                         "bravo", "charlie", "foxtrot"};
  PersistentMap<int> forward;
  PersistentMap<int> backward;
  for (size_t i = 0; i < keys.size(); ++i) {
    forward = forward.Insert(keys[i], static_cast<int>(i));
    backward =
        backward.Insert(keys[keys.size() - 1 - i],
                        static_cast<int>(keys.size() - 1 - i));
  }
  Entries expected = {{"alpha", 1},   {"bravo", 3}, {"charlie", 4},
                      {"delta", 0},   {"echo", 2},  {"foxtrot", 5}};
  EXPECT_EQ(Collect(forward), expected);
  EXPECT_EQ(Collect(backward), expected);
}

TEST(PersistentMapTest, ForEachStopsEarly) {
  PersistentMap<int> map;
  for (char c = 'a'; c <= 'e'; ++c) {
    map = map.Insert(std::string(1, c), c);
  }
  Entries seen;
  bool completed = map.ForEach([&seen](const std::string& key, int value) {
    seen.emplace_back(key, value);
    return seen.size() < 2;
  });
  EXPECT_FALSE(completed);
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].first, "a");
  EXPECT_EQ(seen[1].first, "b");
}

TEST(PersistentMapTest, ForEachFromStartsAtLowerBound) {
  PersistentMap<int> map;
  map = map.Insert("apple", 1)
            .Insert("banana", 2)
            .Insert("cherry", 3)
            .Insert("date", 4);

  Entries from_banana;
  map.ForEachFrom("banana", [&](const std::string& key, int value) {
    from_banana.emplace_back(key, value);
    return true;
  });
  EXPECT_EQ(from_banana,
            (Entries{{"banana", 2}, {"cherry", 3}, {"date", 4}}));

  // A `from` between keys starts at the next key up.
  Entries from_bx;
  map.ForEachFrom("bx", [&](const std::string& key, int value) {
    from_bx.emplace_back(key, value);
    return true;
  });
  EXPECT_EQ(from_bx, (Entries{{"cherry", 3}, {"date", 4}}));

  // A `from` past every key visits nothing.
  Entries from_end;
  map.ForEachFrom("zzz", [&](const std::string& key, int value) {
    from_end.emplace_back(key, value);
    return true;
  });
  EXPECT_TRUE(from_end.empty());
}

TEST(PersistentMapTest, LargeMapStaysConsistent) {
  PersistentMap<int> map;
  for (int i = 0; i < 1000; ++i) {
    map = map.Insert("key" + std::to_string(i), i);
  }
  EXPECT_EQ(map.size(), 1000u);
  for (int i = 0; i < 1000; ++i) {
    const int* value = map.Find("key" + std::to_string(i));
    ASSERT_NE(value, nullptr) << i;
    EXPECT_EQ(*value, i);
  }
  for (int i = 0; i < 1000; i += 2) {
    map = map.Erase("key" + std::to_string(i));
  }
  EXPECT_EQ(map.size(), 500u);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(map.Find("key" + std::to_string(i)) != nullptr, i % 2 == 1);
  }
}

}  // namespace
}  // namespace metacomm
