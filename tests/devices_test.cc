#include <gtest/gtest.h>

#include "devices/definity_pbx.h"
#include "devices/messaging_platform.h"

namespace metacomm::devices {
namespace {

using lexpress::DescriptorOp;
using lexpress::Record;

class PbxTest : public ::testing::Test {
 protected:
  PbxTest() : pbx_(PbxConfig{.name = "pbx1"}) {}
  DefinityPbx pbx_;
};

TEST_F(PbxTest, AddDisplayRemoveViaOssi) {
  auto reply = pbx_.ExecuteCommand(
      "add station 4567 Name \"John Doe\" Room 2C-401");
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(*reply, "command successfully completed");

  reply = pbx_.ExecuteCommand("display station 4567");
  ASSERT_TRUE(reply.ok());
  EXPECT_NE(reply->find("Name: John Doe"), std::string::npos);
  EXPECT_NE(reply->find("Room: 2C-401"), std::string::npos);
  EXPECT_NE(reply->find("Cos: 1"), std::string::npos);  // Default.

  ASSERT_TRUE(pbx_.ExecuteCommand("remove station 4567").ok());
  EXPECT_EQ(pbx_.ExecuteCommand("display station 4567").status().code(),
            StatusCode::kNotFound);
}

TEST_F(PbxTest, ChangeMergesFields) {
  ASSERT_TRUE(
      pbx_.ExecuteCommand("add station 4567 Name \"John Doe\"").ok());
  ASSERT_TRUE(pbx_.ExecuteCommand("change station 4567 Room 3F-112").ok());
  auto record = pbx_.GetRecord("4567");
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->GetFirst("Name"), "John Doe");  // Preserved.
  EXPECT_EQ(record->GetFirst("Room"), "3F-112");
}

TEST_F(PbxTest, ExtensionChangeRekeys) {
  ASSERT_TRUE(pbx_.ExecuteCommand("add station 4567 Name X").ok());
  ASSERT_TRUE(
      pbx_.ExecuteCommand("change station 4567 Extension 4568").ok());
  EXPECT_EQ(pbx_.GetRecord("4567").status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(pbx_.GetRecord("4568").ok());
}

TEST_F(PbxTest, ValidationErrors) {
  // No Name.
  EXPECT_EQ(pbx_.ExecuteCommand("add station 4567").status().code(),
            StatusCode::kInvalidArgument);
  // Bad extension (non-digits / wrong length).
  EXPECT_FALSE(pbx_.ExecuteCommand("add station 45a7 Name X").ok());
  EXPECT_FALSE(pbx_.ExecuteCommand("add station 45 Name X").ok());
  EXPECT_FALSE(pbx_.ExecuteCommand("add station 1234567 Name X").ok());
  // Bad Cos.
  EXPECT_FALSE(pbx_.ExecuteCommand("add station 4567 Name X Cos 9").ok());
  // Unknown field.
  EXPECT_FALSE(
      pbx_.ExecuteCommand("add station 4567 Name X Shoe blue").ok());
  // Duplicate add.
  ASSERT_TRUE(pbx_.ExecuteCommand("add station 4567 Name X").ok());
  EXPECT_EQ(pbx_.ExecuteCommand("add station 4567 Name Y").status().code(),
            StatusCode::kAlreadyExists);
  // Change/remove unknown station.
  EXPECT_EQ(pbx_.ExecuteCommand("change station 9999 Name Z")
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(pbx_.ExecuteCommand("remove station 9999").status().code(),
            StatusCode::kNotFound);
}

TEST_F(PbxTest, DialPlanPartitionEnforced) {
  DefinityPbx scoped(PbxConfig{.name = "pbx9",
                               .extension_prefixes = {"9"}});
  EXPECT_TRUE(scoped.ExecuteCommand("add station 9000 Name X").ok());
  EXPECT_EQ(
      scoped.ExecuteCommand("add station 5000 Name X").status().code(),
      StatusCode::kInvalidArgument);
  EXPECT_TRUE(scoped.AcceptsExtension("9123"));
  EXPECT_FALSE(scoped.AcceptsExtension("5123"));
}

TEST_F(PbxTest, NotificationsOnCommit) {
  std::vector<DeviceNotification> seen;
  pbx_.SetNotificationHandler(
      [&seen](const DeviceNotification& n) { seen.push_back(n); });
  ASSERT_TRUE(pbx_.ExecuteCommand("add station 4567 Name \"John Doe\"").ok());
  ASSERT_TRUE(pbx_.ExecuteCommand("change station 4567 Room 1A-1").ok());
  ASSERT_TRUE(pbx_.ExecuteCommand("remove station 4567").ok());

  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0].op, DescriptorOp::kAdd);
  EXPECT_EQ(seen[0].device_name, "pbx1");
  EXPECT_EQ(seen[0].new_record.GetFirst("Name"), "John Doe");
  EXPECT_EQ(seen[1].op, DescriptorOp::kModify);
  EXPECT_EQ(seen[1].old_record.GetFirst("Room"), "");
  EXPECT_EQ(seen[1].new_record.GetFirst("Room"), "1A-1");
  EXPECT_EQ(seen[2].op, DescriptorOp::kDelete);
  EXPECT_EQ(seen[2].old_record.GetFirst("Extension"), "4567");
}

TEST_F(PbxTest, FailedCommandsDoNotNotify) {
  size_t count = 0;
  pbx_.SetNotificationHandler(
      [&count](const DeviceNotification&) { ++count; });
  EXPECT_FALSE(pbx_.ExecuteCommand("add station bad Name X").ok());
  EXPECT_EQ(count, 0u);
}

TEST_F(PbxTest, FaultInjectionDisconnect) {
  pbx_.faults().set_disconnected(true);
  EXPECT_EQ(pbx_.ExecuteCommand("add station 4567 Name X").status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(pbx_.GetRecord("4567").status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(pbx_.DumpAll().status().code(), StatusCode::kUnavailable);
  pbx_.faults().set_disconnected(false);
  EXPECT_TRUE(pbx_.ExecuteCommand("add station 4567 Name X").ok());
}

TEST_F(PbxTest, FaultInjectionFailNext) {
  pbx_.faults().FailNext(1);
  EXPECT_EQ(pbx_.ExecuteCommand("add station 4567 Name X").status().code(),
            StatusCode::kInternal);
  EXPECT_TRUE(pbx_.ExecuteCommand("add station 4567 Name X").ok());
}

TEST_F(PbxTest, DroppedNotifications) {
  size_t count = 0;
  pbx_.SetNotificationHandler(
      [&count](const DeviceNotification&) { ++count; });
  pbx_.faults().set_drop_notifications(true);
  ASSERT_TRUE(pbx_.ExecuteCommand("add station 4567 Name X").ok());
  EXPECT_EQ(count, 0u);  // Lost — only resync can repair this (§4.4).
  EXPECT_EQ(pbx_.StationCount(), 1u);
}

TEST_F(PbxTest, ListAndDump) {
  ASSERT_TRUE(pbx_.ExecuteCommand("add station 4567 Name A").ok());
  ASSERT_TRUE(pbx_.ExecuteCommand("add station 4568 Name B").ok());
  auto listing = pbx_.ExecuteCommand("list station");
  ASSERT_TRUE(listing.ok());
  EXPECT_NE(listing->find("4567 A"), std::string::npos);
  EXPECT_NE(listing->find("4568 B"), std::string::npos);
  auto dump = pbx_.DumpAll();
  ASSERT_TRUE(dump.ok());
  EXPECT_EQ(dump->size(), 2u);
}

TEST_F(PbxTest, QuotedValuesAndBadSyntax) {
  EXPECT_FALSE(pbx_.ExecuteCommand("add station 4567 Name").ok());
  EXPECT_FALSE(pbx_.ExecuteCommand("add station 4567 Name \"Unbalanced").ok());
  EXPECT_FALSE(pbx_.ExecuteCommand("frobnicate station 4567").ok());
  EXPECT_FALSE(pbx_.ExecuteCommand("").ok());
}

class MpTest : public ::testing::Test {
 protected:
  MpTest() : mp_(MpConfig{.name = "mp1"}) {}
  MessagingPlatform mp_;
};

TEST_F(MpTest, AddGeneratesSubscriberId) {
  auto reply = mp_.ExecuteCommand(
      "ADD MAILBOX 4567 SubscriberName=\"John Doe\" Pin=1234");
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_NE(reply->find("SubscriberId=SUB000001"), std::string::npos);

  reply = mp_.ExecuteCommand("ADD MAILBOX 4568 SubscriberName=X");
  ASSERT_TRUE(reply.ok());
  EXPECT_NE(reply->find("SUB000002"), std::string::npos);
}

TEST_F(MpTest, CallerSuppliedSubscriberIdIgnored) {
  // §5.5: the device owns generated information.
  Record mailbox("mp");
  mailbox.SetOne("MailboxNumber", "4567");
  mailbox.SetOne("SubscriberName", "John Doe");
  mailbox.SetOne("SubscriberId", "FORGED");
  ASSERT_TRUE(mp_.AddRecord(mailbox).ok());
  auto stored = mp_.GetRecord("4567");
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(stored->GetFirst("SubscriberId"), "SUB000001");
}

TEST_F(MpTest, SubscriberIdImmutableAcrossModify) {
  ASSERT_TRUE(
      mp_.ExecuteCommand("ADD MAILBOX 4567 SubscriberName=X").ok());
  ASSERT_TRUE(
      mp_.ExecuteCommand("MODIFY MAILBOX 4567 Greeting=standard").ok());
  auto stored = mp_.GetRecord("4567");
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(stored->GetFirst("SubscriberId"), "SUB000001");
  EXPECT_EQ(stored->GetFirst("Greeting"), "standard");
  EXPECT_EQ(stored->GetFirst("SubscriberName"), "X");  // Merged.
}

TEST_F(MpTest, ValidationErrors) {
  EXPECT_FALSE(mp_.ExecuteCommand("ADD MAILBOX abc SubscriberName=X").ok());
  EXPECT_FALSE(mp_.ExecuteCommand("ADD MAILBOX 4567").ok());
  EXPECT_FALSE(
      mp_.ExecuteCommand("ADD MAILBOX 4567 SubscriberName=X Pin=12").ok());
  EXPECT_FALSE(
      mp_.ExecuteCommand("ADD MAILBOX 4567 SubscriberName=X Hat=red").ok());
  ASSERT_TRUE(mp_.ExecuteCommand("ADD MAILBOX 4567 SubscriberName=X").ok());
  EXPECT_EQ(mp_.ExecuteCommand("ADD MAILBOX 4567 SubscriberName=Y")
                .status()
                .code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(
      mp_.ExecuteCommand("DELETE MAILBOX 9999").status().code(),
      StatusCode::kNotFound);
}

TEST_F(MpTest, QuotedAssignmentsParse) {
  ASSERT_TRUE(mp_.ExecuteCommand(
                     "ADD MAILBOX 4567 SubscriberName=\"Doe, John\" "
                     "Greeting=\"out of office\"")
                  .ok());
  auto stored = mp_.GetRecord("4567");
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(stored->GetFirst("SubscriberName"), "Doe, John");
  EXPECT_EQ(stored->GetFirst("Greeting"), "out of office");
}

TEST_F(MpTest, NotificationCarriesGeneratedId) {
  std::vector<DeviceNotification> seen;
  mp_.SetNotificationHandler(
      [&seen](const DeviceNotification& n) { seen.push_back(n); });
  ASSERT_TRUE(mp_.ExecuteCommand("ADD MAILBOX 4567 SubscriberName=X").ok());
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].new_record.GetFirst("SubscriberId"), "SUB000001");
}

TEST_F(MpTest, ShowDeleteList) {
  ASSERT_TRUE(mp_.ExecuteCommand("ADD MAILBOX 4567 SubscriberName=X").ok());
  auto shown = mp_.ExecuteCommand("SHOW MAILBOX 4567");
  ASSERT_TRUE(shown.ok());
  EXPECT_NE(shown->find("MailboxNumber=4567"), std::string::npos);
  auto listing = mp_.ExecuteCommand("LIST MAILBOXES");
  ASSERT_TRUE(listing.ok());
  EXPECT_NE(listing->find("4567"), std::string::npos);
  ASSERT_TRUE(mp_.ExecuteCommand("DELETE MAILBOX 4567").ok());
  EXPECT_EQ(mp_.MailboxCount(), 0u);
}

TEST_F(MpTest, FaultInjection) {
  mp_.faults().set_disconnected(true);
  EXPECT_EQ(mp_.ExecuteCommand("ADD MAILBOX 4567 SubscriberName=X")
                .status()
                .code(),
            StatusCode::kUnavailable);
  mp_.faults().set_disconnected(false);
  mp_.faults().FailNext(1);
  EXPECT_EQ(mp_.ExecuteCommand("ADD MAILBOX 4567 SubscriberName=X")
                .status()
                .code(),
            StatusCode::kInternal);
}

}  // namespace
}  // namespace metacomm::devices
