#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "common/clock.h"
#include "core/circuit_breaker.h"
#include "core/error_log.h"
#include "core/integrated_schema.h"
#include "core/metacomm.h"
#include "devices/device.h"

namespace metacomm::core {
namespace {

// ---------------------------------------------------------------------
// CircuitBreaker unit tests.
// ---------------------------------------------------------------------

CircuitBreaker::Options TestOptions() {
  CircuitBreaker::Options options;
  options.failure_threshold = 3;
  options.open_backoff_micros = 1'000;
  options.max_backoff_micros = 8'000;
  return options;
}

TEST(CircuitBreakerTest, OpensAfterConsecutiveRetryableFailures) {
  CircuitBreaker breaker(TestOptions());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.OnRetryableFailure(100);
  breaker.OnRetryableFailure(200);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow(300));
  breaker.OnRetryableFailure(300);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  // Open: refused (and counted) until the backoff deadline passes.
  EXPECT_FALSE(breaker.Allow(300 + 999));
  EXPECT_EQ(breaker.snapshot().skipped, 1u);
  EXPECT_TRUE(breaker.Allow(300 + 1'000));  // The half-open probe.
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
}

TEST(CircuitBreakerTest, SuccessfulProbeClosesAndResets) {
  CircuitBreaker breaker(TestOptions());
  for (int i = 0; i < 3; ++i) breaker.OnRetryableFailure(100);
  ASSERT_TRUE(breaker.Allow(100 + 1'000));
  breaker.OnSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.snapshot().consecutive_failures, 0);
  EXPECT_EQ(breaker.snapshot().backoff_micros, 0);
}

TEST(CircuitBreakerTest, FailedProbeDoublesBackoffUpToCap) {
  CircuitBreaker breaker(TestOptions());
  int64_t now = 0;
  for (int i = 0; i < 3; ++i) breaker.OnRetryableFailure(now);
  EXPECT_EQ(breaker.snapshot().backoff_micros, 1'000);

  for (int64_t expected : {2'000, 4'000, 8'000, 8'000}) {
    now += 1'000'000;  // Well past any deadline: probe admitted.
    ASSERT_TRUE(breaker.Allow(now));
    breaker.OnRetryableFailure(now);  // Probe failed: re-open, double.
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
    EXPECT_EQ(breaker.snapshot().backoff_micros, expected);
  }
}

TEST(CircuitBreakerTest, HalfOpenAdmitsOneProbeButReadmitsStaleOnes) {
  CircuitBreaker breaker(TestOptions());
  for (int i = 0; i < 3; ++i) breaker.OnRetryableFailure(0);
  ASSERT_TRUE(breaker.Allow(1'000));   // Probe admitted at t=1000.
  EXPECT_FALSE(breaker.Allow(1'500));  // In-flight probe blocks others.
  // A probe older than one backoff interval is presumed abandoned.
  EXPECT_TRUE(breaker.Allow(1'000 + 1'001));
}

TEST(CircuitBreakerTest, ForceCloseIsAdministrativeReset) {
  CircuitBreaker breaker(TestOptions());
  for (int i = 0; i < 3; ++i) breaker.OnRetryableFailure(0);
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  breaker.ForceClose();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow(1));
}

TEST(CircuitBreakerTest, DisabledBreakerNeverOpens) {
  CircuitBreaker::Options options = TestOptions();
  options.enabled = false;
  CircuitBreaker breaker(options);
  for (int i = 0; i < 10; ++i) breaker.OnRetryableFailure(0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow(0));
}

// ---------------------------------------------------------------------
// FaultInjector schedule tests.
// ---------------------------------------------------------------------

TEST(FaultInjectorTest, ScheduledOutageCoversExactWindow) {
  devices::FaultInjector faults;
  faults.ScheduleOutage(/*after_commands=*/2, /*length_commands=*/3);
  // Commands 0 and 1 pass, 2..4 fail, 5 recovers.
  EXPECT_TRUE(faults.OnMutation("dev").ok());
  EXPECT_TRUE(faults.OnMutation("dev").ok());
  for (int i = 0; i < 3; ++i) {
    Status status = faults.OnMutation("dev");
    EXPECT_EQ(status.code(), StatusCode::kUnavailable) << i;
  }
  EXPECT_TRUE(faults.OnMutation("dev").ok());
  EXPECT_EQ(faults.mutations_seen(), 6u);
  EXPECT_EQ(faults.injected_failures(), 3u);
}

TEST(FaultInjectorTest, ReadsBlockedOnlyWhileWindowActive) {
  devices::FaultInjector faults;
  faults.ScheduleOutage(/*after_commands=*/0, /*length_commands=*/2);
  EXPECT_TRUE(faults.ReadBlocked());
  EXPECT_TRUE(faults.outage_active());
  // Reads do not advance the window; mutations do.
  EXPECT_TRUE(faults.ReadBlocked());
  EXPECT_FALSE(faults.OnMutation("dev").ok());
  EXPECT_FALSE(faults.OnMutation("dev").ok());
  EXPECT_FALSE(faults.ReadBlocked());
  EXPECT_TRUE(faults.OnMutation("dev").ok());
}

TEST(FaultInjectorTest, FailNextCarriesTypedStatusCode) {
  devices::FaultInjector faults;
  faults.FailNext(2, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(faults.OnMutation("dev").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(faults.OnMutation("dev").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(faults.OnMutation("dev").ok());
}

TEST(FaultInjectorTest, ProbabilisticFaultsDeterministicUnderSeed) {
  auto run = [] {
    devices::FaultInjector faults;
    faults.set_seed(42);
    faults.set_error_probability(0.5);
    faults.set_error_code(StatusCode::kDeadlineExceeded);
    std::vector<bool> outcomes;
    for (int i = 0; i < 32; ++i) {
      outcomes.push_back(faults.OnMutation("dev").ok());
    }
    return outcomes;
  };
  std::vector<bool> first = run();
  EXPECT_EQ(first, run());
  // p=0.5 over 32 trials: both outcomes occur.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 32);
}

// ---------------------------------------------------------------------
// Error-log serialization round-trip.
// ---------------------------------------------------------------------

TEST(ErrorLogTest, EscapeRoundTripsMetacharacters) {
  const std::string nasty = "a=b,c%d==,,100%";
  std::string escaped = EscapeErrorToken(nasty);
  EXPECT_EQ(escaped.find('='), std::string::npos);
  EXPECT_EQ(escaped.find(','), std::string::npos);
  auto back = UnescapeErrorToken(escaped);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, nasty);
}

TEST(ErrorLogTest, EncodeParseRoundTripsDescriptor) {
  LoggedFailure failure;
  failure.sequence = 17;
  failure.repository = "mp1";
  failure.outcome = ApplyOutcome::kRetryable;
  failure.error = Status::Unavailable("mp1: link down");
  failure.update.op = lexpress::DescriptorOp::kModify;
  failure.update.schema = "mp";
  failure.update.source = "ldap";
  failure.update.conditional = true;
  failure.update.explicit_attrs = {"Pin"};
  failure.update.old_record = lexpress::Record("mp");
  failure.update.old_record.Set("MailboxNumber", {"4567"});
  failure.update.old_record.Set("Pin", {"1234"});
  failure.update.new_record = lexpress::Record("mp");
  failure.update.new_record.Set("MailboxNumber", {"4567"});
  // Values exercising the image-encoding metacharacters.
  failure.update.new_record.Set("Pin", {"12%34", "a=b", "x,y"});
  failure.update.new_record.Set("SubscriberName", {"Doe, John"});

  auto dn = ldap::Dn::Parse("cn=error-17,cn=errors,o=Lucent");
  ASSERT_TRUE(dn.ok());
  ldap::Entry entry(*dn);
  EncodeFailure(failure, &entry);

  auto parsed = ParseErrorEntry(entry);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->sequence, 17u);
  EXPECT_EQ(parsed->repository, "mp1");
  EXPECT_EQ(parsed->outcome, ApplyOutcome::kRetryable);
  EXPECT_TRUE(parsed->replayable());
  EXPECT_EQ(parsed->update.op, lexpress::DescriptorOp::kModify);
  EXPECT_EQ(parsed->update.schema, "mp");
  EXPECT_EQ(parsed->update.source, "ldap");
  EXPECT_TRUE(parsed->update.conditional);
  EXPECT_EQ(parsed->update.explicit_attrs, failure.update.explicit_attrs);
  EXPECT_EQ(parsed->update.old_record.Get("Pin"),
            std::vector<std::string>{"1234"});
  std::vector<std::string> pins = {"12%34", "a=b", "x,y"};
  EXPECT_EQ(parsed->update.new_record.Get("Pin"), pins);
  EXPECT_EQ(parsed->update.new_record.GetFirst("SubscriberName"),
            "Doe, John");
}

TEST(ErrorLogTest, AuditOnlyEntriesAreRejected) {
  auto dn = ldap::Dn::Parse("cn=errors,o=Lucent");
  ASSERT_TRUE(dn.ok());
  ldap::Entry container(*dn);  // No errorSeq: the container itself.
  auto parsed = ParseErrorEntry(container);
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(ErrorLogTest, PermanentFailuresAreNotReplayable) {
  LoggedFailure failure;
  failure.sequence = 1;
  failure.repository = "pbx1";
  failure.outcome = ApplyOutcome::kPermanent;
  EXPECT_FALSE(failure.replayable());
  failure.outcome = ApplyOutcome::kSkippedOpenCircuit;
  EXPECT_TRUE(failure.replayable());
  failure.repository.clear();  // Audit-only: no replay target.
  EXPECT_FALSE(failure.replayable());
}

// ---------------------------------------------------------------------
// End-to-end fault tolerance: outage -> degraded -> recovery.
// ---------------------------------------------------------------------

class FaultToleranceTest : public ::testing::Test {
 protected:
  void Build(SystemConfig config) {
    auto system = MetaCommSystem::Create(std::move(config));
    ASSERT_TRUE(system.ok()) << system.status();
    system_ = std::move(*system);
  }

  /// Replayable (errorSeq-bearing) entries under cn=errors.
  std::vector<ldap::Entry> ErrorEntries() {
    ldap::Client client = system_->NewClient();
    auto found = client.Search("cn=errors,o=Lucent",
                               "(objectClass=metacommError)");
    if (!found.ok()) return {};
    std::vector<ldap::Entry> entries;
    for (ldap::Entry& entry : *found) {
      if (!entry.GetFirst("errorSeq").empty()) {
        entries.push_back(std::move(entry));
      }
    }
    return entries;
  }

  uint64_t BacklogFor(const std::string& repository) {
    for (const UpdateManager::Stats::RepositoryStats& repo :
         system_->update_manager().stats().repositories) {
      if (repo.name == repository) return repo.replay_backlog;
    }
    return 0;
  }

  std::unique_ptr<MetaCommSystem> system_;
};

TEST_F(FaultToleranceTest, BreakerOpensAndHealthyPathContinues) {
  SystemConfig config;
  config.um.breaker_failure_threshold = 2;
  // Backoff far beyond the test's lifetime: no probes sneak through.
  config.um.breaker_open_backoff_micros = 60'000'000;
  Build(config);
  ASSERT_TRUE(system_
                  ->AddPerson("John Doe",
                              {{"telephoneNumber", "+1 908 582 4567"}})
                  .ok());

  const uint64_t mutations_before =
      system_->mp("mp1")->faults().mutations_seen();
  system_->mp("mp1")->faults().set_disconnected(true);
  ldap::Client client = system_->NewClient();
  const std::string dn = "cn=John Doe,ou=People,o=Lucent";
  for (int i = 0; i < 5; ++i) {
    // Client writes keep succeeding: device failures are out-of-band.
    ASSERT_TRUE(
        client.Replace(dn, "MpPin", "100" + std::to_string(i)).ok());
  }

  // Two real attempts opened the circuit; later updates never touched
  // the device. (An unreachable platform refuses even the read the
  // filter issues before mutating, so no command reaches the link.)
  CircuitBreaker* breaker = system_->update_manager().breaker("mp1");
  ASSERT_NE(breaker, nullptr);
  EXPECT_EQ(breaker->state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(system_->mp("mp1")->faults().mutations_seen(),
            mutations_before);
  UpdateManager::Stats stats = system_->update_manager().stats();
  EXPECT_GE(stats.breaker_open_skips, 3u);
  EXPECT_GE(stats.errors, 5u);

  // Every failed update landed under cn=errors as a replayable entry
  // targeting mp1, and the backlog counter tracks them.
  std::vector<ldap::Entry> errors = ErrorEntries();
  EXPECT_GE(errors.size(), 5u);
  for (const ldap::Entry& entry : errors) {
    EXPECT_EQ(entry.GetFirst("errorRepository"), "mp1");
  }
  EXPECT_GE(BacklogFor("mp1"), 5u);

  // The healthy repository keeps taking propagation undisturbed.
  ASSERT_TRUE(client.Replace(dn, "roomNumber", "2C-120").ok());
  auto station = system_->pbx("pbx1")->GetRecord("4567");
  ASSERT_TRUE(station.ok()) << station.status();
  EXPECT_EQ(station->GetFirst("Room"), "2C-120");

  // The monitor publishes the degraded state.
  ASSERT_TRUE(system_->monitor().Refresh().ok());
  auto health = client.Get("cn=um-health-mp1,cn=monitor,o=Lucent");
  ASSERT_TRUE(health.ok()) << health.status();
  bool saw_state = false;
  for (const std::string& info : health->GetAll("monitorInfo")) {
    if (info == "breakerState=open") saw_state = true;
  }
  EXPECT_TRUE(saw_state);
}

TEST_F(FaultToleranceTest, RepairReplaysBacklogInOrderAndConverges) {
  SystemConfig config;
  config.um.breaker_failure_threshold = 2;
  config.um.breaker_open_backoff_micros = 1'000;  // Probe quickly.
  Build(config);
  ASSERT_TRUE(system_
                  ->AddPerson("John Doe",
                              {{"telephoneNumber", "+1 908 582 4567"}})
                  .ok());
  ASSERT_TRUE(system_
                  ->AddPerson("Pat Smith",
                              {{"telephoneNumber", "+1 908 582 4568"}})
                  .ok());

  system_->mp("mp1")->faults().set_disconnected(true);
  ldap::Client client = system_->NewClient();
  // Several updates to the same mailbox while down: replay must land
  // on the LAST value, in original order.
  for (const char* pin : {"1111", "2222", "3333"}) {
    ASSERT_TRUE(
        client.Replace("cn=John Doe,ou=People,o=Lucent", "MpPin", pin)
            .ok());
  }
  ASSERT_TRUE(client
                  .Replace("cn=Pat Smith,ou=People,o=Lucent", "MpPin",
                           "9999")
                  .ok());
  ASSERT_GE(ErrorEntries().size(), 4u);

  // Recovery: the device comes back; let the breaker's backoff lapse
  // so the first replay is admitted as the half-open probe.
  system_->mp("mp1")->faults().set_disconnected(false);
  RealClock::Get()->SleepMicros(5'000);
  ASSERT_TRUE(system_->update_manager().RunRepairPass().ok());

  // The backlog drained, in order, to the final values.
  auto john = system_->mp("mp1")->GetRecord("4567");
  ASSERT_TRUE(john.ok()) << john.status();
  EXPECT_EQ(john->GetFirst("Pin"), "3333");
  auto pat = system_->mp("mp1")->GetRecord("4568");
  ASSERT_TRUE(pat.ok()) << pat.status();
  EXPECT_EQ(pat->GetFirst("Pin"), "9999");

  UpdateManager::Stats stats = system_->update_manager().stats();
  EXPECT_GE(stats.replayed, 4u);
  EXPECT_GE(stats.repair_passes, 1u);
  EXPECT_EQ(BacklogFor("mp1"), 0u);
  EXPECT_TRUE(ErrorEntries().empty());
  EXPECT_EQ(system_->update_manager().breaker("mp1")->state(),
            CircuitBreaker::State::kClosed);

  // Byte-identical convergence with the directory's image.
  auto entry = client.Get("cn=John Doe,ou=People,o=Lucent");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->GetFirst("MpPin"), "3333");
}

TEST_F(FaultToleranceTest, RepairFallsBackToSynchronizeWhenReplayCant) {
  SystemConfig config;
  config.um.breaker_failure_threshold = 2;
  config.um.breaker_open_backoff_micros = 1'000;
  Build(config);
  ASSERT_TRUE(system_
                  ->AddPerson("John Doe",
                              {{"telephoneNumber", "+1 908 582 4567"}})
                  .ok());

  system_->mp("mp1")->faults().set_disconnected(true);
  ldap::Client client = system_->NewClient();
  for (const char* pin : {"1111", "2222"}) {
    ASSERT_TRUE(
        client.Replace("cn=John Doe,ou=People,o=Lucent", "MpPin", pin)
            .ok());
  }
  system_->mp("mp1")->faults().set_disconnected(false);
  RealClock::Get()->SleepMicros(5'000);

  // The first replay is permanently rejected (typed injection): repair
  // must fall back to a targeted Synchronize and still converge.
  system_->mp("mp1")->faults().FailNext(1, StatusCode::kInvalidArgument);
  ASSERT_TRUE(system_->update_manager().RunRepairPass().ok());

  UpdateManager::Stats stats = system_->update_manager().stats();
  EXPECT_GE(stats.repair_syncs, 1u);
  auto mailbox = system_->mp("mp1")->GetRecord("4567");
  ASSERT_TRUE(mailbox.ok()) << mailbox.status();
  EXPECT_EQ(mailbox->GetFirst("Pin"), "2222");
  EXPECT_EQ(BacklogFor("mp1"), 0u);
  EXPECT_TRUE(ErrorEntries().empty());
}

TEST_F(FaultToleranceTest, ScriptedOutageDegradesThenRecovers) {
  SystemConfig config;
  config.um.breaker_failure_threshold = 2;
  config.um.breaker_open_backoff_micros = 1'000;
  Build(config);
  ASSERT_TRUE(system_
                  ->AddPerson("John Doe",
                              {{"telephoneNumber", "+1 908 582 4567"}})
                  .ok());

  // The NEXT two mutating commands at the platform fail (scripted
  // window), then the device recovers by itself.
  system_->mp("mp1")->faults().ScheduleOutage(/*after_commands=*/0,
                                              /*length_commands=*/2);
  ldap::Client client = system_->NewClient();
  for (const char* pin : {"1111", "2222", "3333"}) {
    ASSERT_TRUE(
        client.Replace("cn=John Doe,ou=People,o=Lucent", "MpPin", pin)
            .ok());
  }
  // The failures were logged; whether any update probed (healing the
  // circuit) or fast-failed depends on wall-clock timing, but either
  // way the repair pass must drain the backlog.
  ASSERT_GE(ErrorEntries().size(), 2u);

  // The window is pinned to the device's mutation count, and an active
  // window also refuses the reads the filter issues first — so it is
  // the platform's own admin traffic that burns through it (failing
  // all the while), exactly like a real outage ending on its own.
  for (int i = 0; i < 2; ++i) {
    auto reply = system_->mp("mp1")->ExecuteCommand(
        "MODIFY MAILBOX 4567 Greeting=maintenance");
    EXPECT_EQ(reply.status().code(), StatusCode::kUnavailable) << i;
  }
  EXPECT_FALSE(system_->mp("mp1")->faults().outage_active());

  RealClock::Get()->SleepMicros(5'000);
  ASSERT_TRUE(system_->update_manager().RunRepairPass().ok());
  auto mailbox = system_->mp("mp1")->GetRecord("4567");
  ASSERT_TRUE(mailbox.ok()) << mailbox.status();
  EXPECT_EQ(mailbox->GetFirst("Pin"), "3333");
  EXPECT_TRUE(ErrorEntries().empty());
}

TEST_F(FaultToleranceTest, StopInterruptsRepairWorkerPromptly) {
  SystemConfig config;
  config.um.threaded = true;
  config.um.worker_threads = 2;
  config.um.repair_enabled = true;
  // A scan interval far beyond the test: Stop() must not wait it out.
  config.um.repair_scan_interval_micros = 600'000'000;
  Build(config);
  ASSERT_TRUE(system_
                  ->AddPerson("John Doe",
                              {{"telephoneNumber", "+1 908 582 4567"}})
                  .ok());

  auto start = std::chrono::steady_clock::now();
  system_->update_manager().Stop();
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5'000);

  // Stop/Start round-trips: the repair worker comes back.
  system_->update_manager().Start();
  system_->update_manager().Stop();
}

TEST_F(FaultToleranceTest, DisabledBreakerKeepsHammeringTheDevice) {
  SystemConfig config;
  config.um.breaker_enabled = false;
  Build(config);
  ASSERT_TRUE(system_
                  ->AddPerson("John Doe",
                              {{"telephoneNumber", "+1 908 582 4567"}})
                  .ok());
  // Flaky link: reads pass but every mutation fails, so each update
  // pays a full device attempt.
  system_->mp("mp1")->faults().FailNext(5, StatusCode::kUnavailable);
  ldap::Client client = system_->NewClient();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client
                    .Replace("cn=John Doe,ou=People,o=Lucent", "MpPin",
                             "200" + std::to_string(i))
                    .ok());
  }
  // Every update paid the full device attempt — the ablation the
  // breaker exists to avoid.
  EXPECT_EQ(system_->mp("mp1")->faults().injected_failures(), 5u);
  EXPECT_EQ(system_->update_manager().stats().breaker_open_skips, 0u);
}

}  // namespace
}  // namespace metacomm::core
