#include <gtest/gtest.h>

#include "ldap/filter.h"

namespace metacomm::ldap {
namespace {

Entry MakePerson() {
  Entry entry(Dn::Root().Child(Rdn("cn", "John Doe")));
  entry.Set("objectClass", {"top", "person", "inetOrgPerson"});
  entry.SetOne("cn", "John Doe");
  entry.SetOne("sn", "Doe");
  entry.SetOne("telephoneNumber", "+1 908 582 9000");
  entry.SetOne("roomNumber", "2C-401");
  entry.SetOne("employeeNumber", "120");
  return entry;
}

TEST(FilterParseTest, Equality) {
  auto f = Filter::Parse("(cn=John Doe)");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->kind(), Filter::Kind::kEquality);
  EXPECT_EQ(f->attribute(), "cn");
  EXPECT_EQ(f->value(), "John Doe");
}

TEST(FilterParseTest, BareFilterGetsParenthesized) {
  auto f = Filter::Parse("cn=John Doe");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->kind(), Filter::Kind::kEquality);
}

TEST(FilterParseTest, Presence) {
  auto f = Filter::Parse("(telephoneNumber=*)");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->kind(), Filter::Kind::kPresent);
}

TEST(FilterParseTest, Substring) {
  auto f = Filter::Parse("(telephoneNumber=+1 908 582 9*)");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->kind(), Filter::Kind::kSubstring);
}

TEST(FilterParseTest, ComplexNested) {
  auto f = Filter::Parse(
      "(&(objectClass=inetOrgPerson)(|(cn=John*)(cn=Pat*))"
      "(!(roomNumber=9Z-*)))");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->kind(), Filter::Kind::kAnd);
  ASSERT_EQ(f->children().size(), 3u);
  EXPECT_EQ(f->children()[1].kind(), Filter::Kind::kOr);
  EXPECT_EQ(f->children()[2].kind(), Filter::Kind::kNot);
}

TEST(FilterParseTest, Ordering) {
  auto ge = Filter::Parse("(employeeNumber>=100)");
  ASSERT_TRUE(ge.ok());
  EXPECT_EQ(ge->kind(), Filter::Kind::kGreaterOrEqual);
  auto le = Filter::Parse("(employeeNumber<=100)");
  ASSERT_TRUE(le.ok());
  EXPECT_EQ(le->kind(), Filter::Kind::kLessOrEqual);
  auto approx = Filter::Parse("(cn~=johndoe)");
  ASSERT_TRUE(approx.ok());
  EXPECT_EQ(approx->kind(), Filter::Kind::kApprox);
}

TEST(FilterParseTest, Errors) {
  EXPECT_FALSE(Filter::Parse("(cn=John").ok());
  EXPECT_FALSE(Filter::Parse("(&)").ok());
  EXPECT_FALSE(Filter::Parse("(cn=x)(sn=y)").ok());
  EXPECT_FALSE(Filter::Parse("(=x)").ok());
}

TEST(FilterParseTest, EscapedValue) {
  auto f = Filter::Parse("(cn=a\\2ab)");  // \2a = '*'
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->kind(), Filter::Kind::kEquality);
  EXPECT_EQ(f->value(), "a*b");
}

struct MatchCase {
  const char* filter;
  bool expect;
};

class FilterMatchTest : public ::testing::TestWithParam<MatchCase> {};

TEST_P(FilterMatchTest, MatchesPerson) {
  const MatchCase& c = GetParam();
  auto f = Filter::Parse(c.filter);
  ASSERT_TRUE(f.ok()) << c.filter;
  EXPECT_EQ(f->Matches(MakePerson()), c.expect) << c.filter;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, FilterMatchTest,
    ::testing::Values(
        MatchCase{"(cn=John Doe)", true},
        MatchCase{"(cn=john doe)", true},  // caseIgnoreMatch.
        MatchCase{"(cn=John  Doe)", true},  // Space normalization.
        MatchCase{"(cn=Jane Doe)", false},
        MatchCase{"(telephoneNumber=*)", true},
        MatchCase{"(mail=*)", false},
        MatchCase{"(cn=John*)", true},
        MatchCase{"(cn=*Doe)", true},
        MatchCase{"(cn=*oh*)", true},
        MatchCase{"(cn=Jane*)", false},
        MatchCase{"(telephoneNumber=+1 908 582 9*)", true},
        MatchCase{"(telephoneNumber=+1 908 582 5*)", false},
        MatchCase{"(employeeNumber>=100)", true},
        MatchCase{"(employeeNumber>=121)", false},
        MatchCase{"(employeeNumber<=120)", true},
        MatchCase{"(employeeNumber<=99)", false},
        // Numeric comparison, not lexicographic: "99" < "120" as numbers.
        MatchCase{"(employeeNumber>=99)", true},
        MatchCase{"(cn~=JohnDoe)", true},
        MatchCase{"(cn~=JohnD)", false},
        MatchCase{"(&(cn=John*)(roomNumber=2C-401))", true},
        MatchCase{"(&(cn=John*)(roomNumber=9Z-000))", false},
        MatchCase{"(|(cn=Jane*)(roomNumber=2C-401))", true},
        MatchCase{"(!(cn=Jane Doe))", true},
        MatchCase{"(!(cn=John Doe))", false}));

TEST(FilterToStringTest, RoundTrip) {
  const char* filters[] = {
      "(cn=John Doe)",
      "(telephoneNumber=*)",
      "(cn=John*)",
      "(&(objectClass=person)(cn=J*))",
      "(|(cn=a)(cn=b))",
      "(!(cn=x))",
      "(employeeNumber>=10)",
  };
  for (const char* text : filters) {
    auto f = Filter::Parse(text);
    ASSERT_TRUE(f.ok()) << text;
    auto reparsed = Filter::Parse(f->ToString());
    ASSERT_TRUE(reparsed.ok()) << f->ToString();
    EXPECT_EQ(reparsed->ToString(), f->ToString());
  }
}

TEST(FilterToStringTest, EscapesSpecialCharacters) {
  Filter f = Filter::Equality("cn", "a*b(c)");
  std::string text = f.ToString();
  auto reparsed = Filter::Parse(text);
  ASSERT_TRUE(reparsed.ok()) << text;
  EXPECT_EQ(reparsed->value(), "a*b(c)");
  EXPECT_EQ(reparsed->kind(), Filter::Kind::kEquality);
}


TEST(FilterParseTest, DepthGuardRejectsPathologicalNesting) {
  std::string deep;
  for (int i = 0; i < 500; ++i) deep += "(!";
  deep += "(cn=x)";
  for (int i = 0; i < 500; ++i) deep += ")";
  auto f = Filter::Parse(deep);
  EXPECT_EQ(f.status().code(), StatusCode::kInvalidArgument);
  // Moderate nesting still parses.
  std::string ok;
  for (int i = 0; i < 50; ++i) ok += "(!";
  ok += "(cn=x)";
  for (int i = 0; i < 50; ++i) ok += ")";
  EXPECT_TRUE(Filter::Parse(ok).ok());
}

TEST(FilterTest, MatchAllMatchesAnyEntryWithClasses) {
  EXPECT_TRUE(Filter::MatchAll().Matches(MakePerson()));
}

}  // namespace
}  // namespace metacomm::ldap
