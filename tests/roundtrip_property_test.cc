#include <gtest/gtest.h>

#include "common/random.h"
#include "ldap/dn.h"
#include "ldap/filter.h"
#include "ldap/ldif.h"

namespace metacomm::ldap {
namespace {

/// Random-input round-trip properties over the wire formats: whatever
/// value goes in must come back identical through
/// escape/serialize -> parse.

std::string RandomValue(Random& rng, bool nasty) {
  // Printable ASCII, with the DN/LDIF special characters over-weighted
  // when `nasty` so escaping paths get exercised.
  static const char kNasty[] = ",+\"\\<>;=# *()";
  size_t length = 1 + rng.Uniform(20);
  std::string out;
  for (size_t i = 0; i < length; ++i) {
    if (nasty && rng.Bernoulli(0.3)) {
      out.push_back(kNasty[rng.Uniform(sizeof(kNasty) - 1)]);
    } else {
      out.push_back(static_cast<char>('!' + rng.Uniform(94)));
    }
  }
  return out;
}

class DnRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DnRoundTripTest, EscapeParsePreservesValues) {
  Random rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    std::string cn = RandomValue(rng, /*nasty=*/true);
    std::string ou = RandomValue(rng, /*nasty=*/true);
    Dn dn = Dn::Root().Child(Rdn("ou", ou)).Child(Rdn("cn", cn));
    std::string text = dn.ToString();
    auto reparsed = Dn::Parse(text);
    ASSERT_TRUE(reparsed.ok())
        << "cn=" << cn << " ou=" << ou << " text=" << text << " -> "
        << reparsed.status();
    EXPECT_EQ(reparsed->leaf().ValueOf("cn"), cn) << text;
    EXPECT_EQ(reparsed->Parent().leaf().ValueOf("ou"), ou) << text;
    // Normalized form is stable across a second round trip.
    auto again = Dn::Parse(reparsed->ToString());
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->Normalized(), reparsed->Normalized());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DnRoundTripTest,
                         ::testing::Values(1u, 2u, 3u, 17u, 20260705u));

class LdifRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LdifRoundTripTest, SerializeParsePreservesEntries) {
  Random rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    Entry entry(Dn::Root().Child(
        Rdn("cn", "e" + std::to_string(rng.Uniform(100000)))));
    entry.AddObjectClass("top");
    size_t attr_count = 1 + rng.Uniform(5);
    for (size_t a = 0; a < attr_count; ++a) {
      std::string name = "attr" + std::to_string(a);
      size_t value_count = 1 + rng.Uniform(3);
      for (size_t v = 0; v < value_count; ++v) {
        entry.AddValue(name, RandomValue(rng, rng.Bernoulli(0.5)));
      }
    }
    std::string text = ToLdif(entry);
    auto parsed = ParseLdif(text);
    ASSERT_TRUE(parsed.ok()) << text << "\n" << parsed.status();
    ASSERT_EQ(parsed->size(), 1u);
    EXPECT_TRUE((*parsed)[0].entry == entry)
        << "in:\n" << entry.ToString() << "ldif:\n" << text << "out:\n"
        << (*parsed)[0].entry.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LdifRoundTripTest,
                         ::testing::Values(5u, 6u, 7u));

/// Builds a random filter tree of bounded depth.
Filter RandomFilter(Random& rng, int depth) {
  std::string attr = "a" + std::to_string(rng.Uniform(4));
  if (depth == 0 || rng.Bernoulli(0.5)) {
    switch (rng.Uniform(5)) {
      case 0:
        return Filter::Equality(attr, RandomValue(rng, true));
      case 1:
        return Filter::Present(attr);
      case 2:
        return Filter::Substring(attr,
                                 "*" + RandomValue(rng, false) + "*");
      case 3:
        return Filter::GreaterOrEqual(attr,
                                      std::to_string(rng.Uniform(100)));
      default:
        return Filter::LessOrEqual(attr, std::to_string(rng.Uniform(100)));
    }
  }
  switch (rng.Uniform(3)) {
    case 0: {
      std::vector<Filter> children;
      size_t n = 2 + rng.Uniform(2);
      for (size_t i = 0; i < n; ++i) {
        children.push_back(RandomFilter(rng, depth - 1));
      }
      return Filter::And(std::move(children));
    }
    case 1: {
      std::vector<Filter> children;
      size_t n = 2 + rng.Uniform(2);
      for (size_t i = 0; i < n; ++i) {
        children.push_back(RandomFilter(rng, depth - 1));
      }
      return Filter::Or(std::move(children));
    }
    default:
      return Filter::Not(RandomFilter(rng, depth - 1));
  }
}

Entry RandomEntry(Random& rng) {
  Entry entry(Dn::Root().Child(Rdn("cn", "x")));
  entry.AddObjectClass("top");
  for (int a = 0; a < 4; ++a) {
    if (rng.Bernoulli(0.7)) {
      entry.AddValue("a" + std::to_string(a),
                     rng.Bernoulli(0.5)
                         ? std::to_string(rng.Uniform(100))
                         : RandomValue(rng, false));
    }
  }
  return entry;
}

class FilterRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FilterRoundTripTest, ParsedFilterMatchesLikeOriginal) {
  Random rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    Filter original = RandomFilter(rng, 3);
    std::string text = original.ToString();
    auto reparsed = Filter::Parse(text);
    ASSERT_TRUE(reparsed.ok()) << text << " -> " << reparsed.status();
    EXPECT_EQ(reparsed->ToString(), text);
    // Semantic equivalence on random entries.
    for (int e = 0; e < 20; ++e) {
      Entry entry = RandomEntry(rng);
      EXPECT_EQ(original.Matches(entry), reparsed->Matches(entry))
          << text << "\nentry:\n" << entry.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FilterRoundTripTest,
                         ::testing::Values(11u, 12u, 13u));

}  // namespace
}  // namespace metacomm::ldap
