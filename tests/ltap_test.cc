#include "ltap/gateway.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "ldap/client.h"
#include "ldap/server.h"

namespace metacomm::ltap {
namespace {

using ldap::Client;
using ldap::Dn;
using ldap::Entry;
using ldap::LdapServer;
using ldap::Rdn;
using ldap::Schema;
using ldap::ServerConfig;

/// Action server that records notifications and optionally fails.
class RecordingServer : public TriggerActionServer {
 public:
  Status OnUpdate(const UpdateNotification& notification) override {
    MutexLock lock(&mutex_);
    notifications.push_back(notification);
    return next_status;
  }

  void OnPersistentConnection(uint64_t session, bool open) override {
    // Fired by Quiesce under the gateway state lock: the recorder's
    // lock must rank after kGatewayState — kLeaf does.
    MutexLock lock(&mutex_);
    connections.emplace_back(session, open);
  }

  size_t Count() {
    MutexLock lock(&mutex_);
    return notifications.size();
  }

  Mutex mutex_{LockRank::kLeaf, "test.recording_server"};
  std::vector<UpdateNotification> notifications;
  std::vector<std::pair<uint64_t, bool>> connections;
  Status next_status = Status::Ok();
};

class LtapTest : public ::testing::Test {
 protected:
  LtapTest()
      : server_(Schema::Standard(),
                ServerConfig{.allow_anonymous_writes = true}),
        gateway_(&server_) {}

  void SetUp() override {
    Entry suffix(*Dn::Parse("o=Lucent"));
    suffix.AddObjectClass("top");
    suffix.AddObjectClass("organization");
    suffix.SetOne("o", "Lucent");
    ASSERT_TRUE(server_.backend().Add(suffix).ok());
  }

  void RegisterAfterTrigger(RecordingServer* action,
                            const char* base = "o=Lucent",
                            uint32_t ops = kTriggerAll) {
    TriggerSpec spec;
    spec.name = "test";
    spec.base = *Dn::Parse(base);
    spec.ops = ops;
    spec.timing = TriggerTiming::kAfter;
    spec.server = action;
    gateway_.RegisterTrigger(std::move(spec));
  }

  Status AddPerson(Client& client, const std::string& cn) {
    return client.Add("cn=" + cn + ",o=Lucent",
                      {{"objectClass", "top"},
                       {"objectClass", "person"},
                       {"cn", cn},
                       {"sn", "X"}});
  }

  LdapServer server_;
  LtapGateway gateway_;
};

TEST_F(LtapTest, GatewayIsTransparentForReadsAndWrites) {
  // "LTAP works as a gateway that pretends to be an LDAP server" —
  // clients cannot tell the difference (§4.3).
  Client client(&gateway_);
  ASSERT_TRUE(AddPerson(client, "John Doe").ok());
  auto entry = client.Get("cn=John Doe,o=Lucent");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->GetFirst("cn"), "John Doe");
  // And the write really landed on the wrapped server.
  EXPECT_TRUE(server_.backend().Exists(*Dn::Parse("cn=John Doe,o=Lucent")));
}

TEST_F(LtapTest, AfterTriggerFiresWithImages) {
  RecordingServer action;
  RegisterAfterTrigger(&action);
  Client client(&gateway_);
  ASSERT_TRUE(AddPerson(client, "John Doe").ok());
  ASSERT_TRUE(client.Replace("cn=John Doe,o=Lucent", "sn", "Doe").ok());

  ASSERT_EQ(action.Count(), 2u);
  const UpdateNotification& add = action.notifications[0];
  EXPECT_EQ(add.op, ldap::UpdateOp::kAdd);
  ASSERT_TRUE(add.new_entry.has_value());
  EXPECT_EQ(add.new_entry->GetFirst("cn"), "John Doe");

  const UpdateNotification& mod = action.notifications[1];
  EXPECT_EQ(mod.op, ldap::UpdateOp::kModify);
  ASSERT_TRUE(mod.old_entry.has_value());
  EXPECT_EQ(mod.old_entry->GetFirst("sn"), "X");
  ASSERT_TRUE(mod.new_entry.has_value());
  EXPECT_EQ(mod.new_entry->GetFirst("sn"), "Doe");
}

TEST_F(LtapTest, BeforeTriggerCanVeto) {
  RecordingServer veto;
  veto.next_status = Status::PermissionDenied("policy says no");
  TriggerSpec spec;
  spec.name = "veto";
  spec.base = *Dn::Parse("o=Lucent");
  spec.timing = TriggerTiming::kBefore;
  spec.server = &veto;
  gateway_.RegisterTrigger(std::move(spec));

  Client client(&gateway_);
  Status status = AddPerson(client, "John Doe");
  EXPECT_EQ(status.code(), StatusCode::kPermissionDenied);
  EXPECT_FALSE(server_.backend().Exists(*Dn::Parse("cn=John Doe,o=Lucent")));
  EXPECT_EQ(gateway_.stats().vetoes, 1u);
}

TEST_F(LtapTest, TriggerScopeAndOpMaskFilter) {
  RecordingServer action;
  RegisterAfterTrigger(&action, "ou=People,o=Lucent", kTriggerModify);

  Entry people(*Dn::Parse("ou=People,o=Lucent"));
  people.AddObjectClass("top");
  people.AddObjectClass("organizationalUnit");
  people.SetOne("ou", "People");
  ASSERT_TRUE(server_.backend().Add(people).ok());

  Client client(&gateway_);
  // Outside the base: no fire.
  ASSERT_TRUE(AddPerson(client, "Outside").ok());
  // Inside the base but an Add: masked out.
  ASSERT_TRUE(client
                  .Add("cn=In,ou=People,o=Lucent",
                       {{"objectClass", "top"},
                        {"objectClass", "person"},
                        {"cn", "In"},
                        {"sn", "X"}})
                  .ok());
  EXPECT_EQ(action.Count(), 0u);
  // Modify inside the base: fires.
  ASSERT_TRUE(client.Replace("cn=In,ou=People,o=Lucent", "sn", "Y").ok());
  EXPECT_EQ(action.Count(), 1u);
}

TEST_F(LtapTest, TriggerEntryFilter) {
  RecordingServer action;
  TriggerSpec spec;
  spec.name = "filtered";
  spec.base = *Dn::Parse("o=Lucent");
  spec.filter = *ldap::Filter::Parse("(sn=Doe)");
  spec.timing = TriggerTiming::kAfter;
  spec.server = &action;
  gateway_.RegisterTrigger(std::move(spec));

  Client client(&gateway_);
  ASSERT_TRUE(AddPerson(client, "Nope").ok());  // sn=X: no fire.
  EXPECT_EQ(action.Count(), 0u);
  ASSERT_TRUE(client
                  .Add("cn=Yes,o=Lucent", {{"objectClass", "top"},
                                           {"objectClass", "person"},
                                           {"cn", "Yes"},
                                           {"sn", "Doe"}})
                  .ok());
  EXPECT_EQ(action.Count(), 1u);
}

TEST_F(LtapTest, InternalOpsBypassTriggers) {
  RecordingServer action;
  RegisterAfterTrigger(&action);
  Client client(&gateway_);
  client.set_internal(true);
  ASSERT_TRUE(AddPerson(client, "John Doe").ok());
  EXPECT_EQ(action.Count(), 0u);
  EXPECT_EQ(gateway_.stats().internal_ops, 1u);
}

TEST_F(LtapTest, EntryLockBlocksConflictingUpdate) {
  uint64_t holder = gateway_.NewSession();
  Dn dn = *Dn::Parse("cn=John Doe,o=Lucent");
  ASSERT_TRUE(gateway_.LockEntry(dn, holder).ok());

  // Another session's update times out on the lock.
  GatewayConfig config;
  config.lock_timeout_micros = 20'000;
  LtapGateway fast_gateway(&server_, config);
  Client client(&fast_gateway);
  // Share the lock table? No — locks are per-gateway, so test within
  // one gateway: use a thread against gateway_ with a short-lived
  // client while we hold the lock.
  Client blocked(&gateway_);
  blocked.set_session_id(gateway_.NewSession());
  std::atomic<bool> finished{false};
  std::thread writer([&] {
    Status status = AddPerson(blocked, "John Doe");
    finished.store(true);
    EXPECT_TRUE(status.ok()) << status;  // Succeeds once lock released.
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(finished.load());  // Still waiting on the entry lock.
  gateway_.UnlockEntry(dn, holder);
  writer.join();
  EXPECT_TRUE(finished.load());
  EXPECT_GT(gateway_.lock_table().contended_acquisitions(), 0u);
}

TEST_F(LtapTest, LockIsReentrantForOwner) {
  uint64_t session = gateway_.NewSession();
  Dn dn = *Dn::Parse("cn=X,o=Lucent");
  ASSERT_TRUE(gateway_.LockEntry(dn, session).ok());
  ASSERT_TRUE(gateway_.LockEntry(dn, session).ok());
  gateway_.UnlockEntry(dn, session);
  EXPECT_TRUE(gateway_.lock_table().IsLocked(dn));
  gateway_.UnlockEntry(dn, session);
  EXPECT_FALSE(gateway_.lock_table().IsLocked(dn));
}

TEST_F(LtapTest, QuiesceBlocksOtherSessionsUpdatesNotReads) {
  RecordingServer action;
  RegisterAfterTrigger(&action);
  Client setup(&gateway_);
  ASSERT_TRUE(AddPerson(setup, "John Doe").ok());

  uint64_t sync_session = gateway_.NewSession();
  ASSERT_TRUE(gateway_.Quiesce(sync_session).ok());
  EXPECT_TRUE(gateway_.IsQuiesced());

  // Persistent-connection signal reached the action server (§5.1).
  ASSERT_FALSE(action.connections.empty());
  EXPECT_EQ(action.connections.back(),
            (std::pair<uint64_t, bool>{sync_session, true}));

  // Reads pass through during the quiesce window.
  Client reader(&gateway_);
  EXPECT_TRUE(reader.Get("cn=John Doe,o=Lucent").ok());

  // Updates from the quiescing session itself proceed.
  Client sync_client(&gateway_);
  sync_client.set_session_id(sync_session);
  EXPECT_TRUE(sync_client.Replace("cn=John Doe,o=Lucent", "sn", "Q").ok());

  // Updates from other sessions wait; with a second thread we can see
  // them complete after Unquiesce.
  Client blocked(&gateway_);
  blocked.set_session_id(gateway_.NewSession());
  std::atomic<bool> finished{false};
  std::thread writer([&] {
    Status status = blocked.Replace("cn=John Doe,o=Lucent", "sn", "W");
    finished.store(true);
    EXPECT_TRUE(status.ok()) << status;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(finished.load());
  gateway_.Unquiesce(sync_session);
  writer.join();
  EXPECT_FALSE(gateway_.IsQuiesced());
  EXPECT_EQ(action.connections.back(),
            (std::pair<uint64_t, bool>{sync_session, false}));
}

TEST_F(LtapTest, SecondQuiesceRejected) {
  uint64_t first = gateway_.NewSession();
  uint64_t second = gateway_.NewSession();
  ASSERT_TRUE(gateway_.Quiesce(first).ok());
  EXPECT_EQ(gateway_.Quiesce(second).code(), StatusCode::kConflict);
  gateway_.Unquiesce(first);
  EXPECT_TRUE(gateway_.Quiesce(second).ok());
  gateway_.Unquiesce(second);
}

TEST_F(LtapTest, TriggersDisabledAblation) {
  GatewayConfig config;
  config.triggers_enabled = false;
  LtapGateway bare(&server_, config);
  RecordingServer action;
  TriggerSpec spec;
  spec.name = "ignored";
  spec.base = *Dn::Parse("o=Lucent");
  spec.server = &action;
  bare.RegisterTrigger(std::move(spec));
  Client client(&bare);
  ASSERT_TRUE(AddPerson(client, "Quiet").ok());
  EXPECT_EQ(action.Count(), 0u);
}

TEST_F(LtapTest, StatsCountReadsAndUpdates) {
  Client client(&gateway_);
  ASSERT_TRUE(AddPerson(client, "John Doe").ok());
  ASSERT_TRUE(client.Get("cn=John Doe,o=Lucent").ok());
  ASSERT_TRUE(client.Get("cn=John Doe,o=Lucent").ok());
  LtapGateway::Stats stats = gateway_.stats();
  EXPECT_EQ(stats.updates, 1u);
  EXPECT_EQ(stats.reads, 2u);
}

TEST_F(LtapTest, DeleteOnMissingEntryReportsNotFound) {
  Client client(&gateway_);
  EXPECT_EQ(client.Delete("cn=Ghost,o=Lucent").code(),
            StatusCode::kNotFound);
}

TEST_F(LtapTest, GatewaysStack) {
  // Because LTAP implements the same service interface it wraps,
  // gateways compose: an outer gateway (say, an auditing layer) can
  // front the MetaComm gateway. Triggers fire at each layer.
  RecordingServer inner_action;
  RegisterAfterTrigger(&inner_action);
  LtapGateway outer(&gateway_);
  RecordingServer outer_action;
  TriggerSpec spec;
  spec.name = "outer";
  spec.base = *Dn::Parse("o=Lucent");
  spec.timing = TriggerTiming::kAfter;
  spec.server = &outer_action;
  outer.RegisterTrigger(std::move(spec));

  Client client(&outer);
  ASSERT_TRUE(AddPerson(client, "Stacked").ok());
  EXPECT_EQ(outer_action.Count(), 1u);
  EXPECT_EQ(inner_action.Count(), 1u);
  EXPECT_TRUE(server_.backend().Exists(*Dn::Parse("cn=Stacked,o=Lucent")));
}

TEST_F(LtapTest, ModifyRdnLocksBothNames) {
  RecordingServer action;
  RegisterAfterTrigger(&action);
  Client client(&gateway_);
  ASSERT_TRUE(AddPerson(client, "Old Name").ok());
  ASSERT_TRUE(client.ModifyRdn("cn=Old Name,o=Lucent", "cn=New Name").ok());
  // Rename fired one notification carrying both DNs and both images.
  ASSERT_EQ(action.Count(), 2u);  // Add + ModifyRdn.
  const UpdateNotification& rename = action.notifications[1];
  EXPECT_EQ(rename.op, ldap::UpdateOp::kModifyRdn);
  EXPECT_EQ(rename.dn.ToString(), "cn=Old Name,o=Lucent");
  ASSERT_TRUE(rename.new_dn.has_value());
  EXPECT_EQ(rename.new_dn->ToString(), "cn=New Name,o=Lucent");
  ASSERT_TRUE(rename.old_entry.has_value());
  ASSERT_TRUE(rename.new_entry.has_value());
  EXPECT_EQ(rename.new_entry->GetFirst("cn"), "New Name");
  // Locks fully released afterwards.
  EXPECT_FALSE(gateway_.lock_table().IsLocked(
      *Dn::Parse("cn=Old Name,o=Lucent")));
  EXPECT_FALSE(gateway_.lock_table().IsLocked(
      *Dn::Parse("cn=New Name,o=Lucent")));
}

TEST_F(LtapTest, AfterTriggerErrorReportedButWriteStands) {
  RecordingServer action;
  action.next_status = Status::Internal("action server hiccup");
  RegisterAfterTrigger(&action);
  Client client(&gateway_);
  Status status = AddPerson(client, "Kept");
  // The client learns of the failure...
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  // ...but the directory write already happened (after-trigger).
  EXPECT_TRUE(server_.backend().Exists(*Dn::Parse("cn=Kept,o=Lucent")));
}

}  // namespace
}  // namespace metacomm::ltap
