#include <gtest/gtest.h>

#include "common/random.h"
#include "core/integrated_schema.h"
#include "core/metacomm.h"

namespace metacomm::core {
namespace {

/// Property-based consistency checks: after arbitrary interleavings of
/// LDAP updates and direct device updates, all repositories agree on
/// the shared fields — MetaComm's central claim.
struct PropertyParams {
  uint64_t seed;
  int operations;
  double ddu_fraction;  // Probability an operation is a DDU.
};

class ConsistencyPropertyTest
    : public ::testing::TestWithParam<PropertyParams> {
 protected:
  void SetUp() override {
    auto system = MetaCommSystem::Create(SystemConfig{});
    ASSERT_TRUE(system.ok()) << system.status();
    system_ = std::move(*system);
  }

  /// Checks that every person entry agrees with the PBX and MP images
  /// of the same user on all mapped fields.
  void VerifyConverged() {
    ldap::Client client = system_->NewClient();
    auto people = client.Search("ou=People,o=Lucent",
                                "(objectClass=person)");
    ASSERT_TRUE(people.ok());
    for (const ldap::Entry& entry : *people) {
      SCOPED_TRACE(entry.dn().ToString());
      std::string extension = entry.GetFirst("DefinityExtension");
      if (!extension.empty()) {
        auto station = system_->pbx("pbx1")->GetRecord(extension);
        ASSERT_TRUE(station.ok())
            << "PBX missing station " << extension << " for "
            << entry.dn().ToString();
        EXPECT_EQ(station->GetFirst("Name"), entry.GetFirst("cn"));
        if (entry.Has("roomNumber")) {
          EXPECT_EQ(station->GetFirst("Room"),
                    entry.GetFirst("roomNumber"));
        }
        EXPECT_EQ("+1 908 582 " + extension,
                  entry.GetFirst("telephoneNumber"));
      }
      std::string mailbox_number = entry.GetFirst("MpMailboxNumber");
      if (!mailbox_number.empty()) {
        auto mailbox = system_->mp("mp1")->GetRecord(mailbox_number);
        ASSERT_TRUE(mailbox.ok())
            << "MP missing mailbox " << mailbox_number;
        EXPECT_EQ(mailbox->GetFirst("SubscriberName"),
                  entry.GetFirst("cn"));
        EXPECT_EQ(mailbox->GetFirst("SubscriberId"),
                  entry.GetFirst("MpSubscriberId"));
      }
    }
    // And the reverse inclusion: every station corresponds to an entry.
    auto dump = system_->pbx("pbx1")->DumpAll();
    ASSERT_TRUE(dump.ok());
    for (const lexpress::Record& station : *dump) {
      auto found = system_->ldap_filter().FindByAttr(
          "DefinityExtension", station.GetFirst("Extension"));
      ASSERT_TRUE(found.ok());
      EXPECT_TRUE(found->has_value())
          << "orphan station " << station.GetFirst("Extension");
    }
  }

  std::unique_ptr<MetaCommSystem> system_;
};

TEST_P(ConsistencyPropertyTest, RandomWorkloadConverges) {
  const PropertyParams& params = GetParam();
  Random rng(params.seed);
  ldap::Client client = system_->NewClient();

  std::vector<std::string> population;  // Extensions in play.
  const char* const kRooms[] = {"1A-1", "2B-2", "3C-3", "4D-4"};
  const char* const kNames[] = {"Ada Lovelace", "Grace Hopper",
                                "Edsger Dijkstra", "Barbara Liskov",
                                "Donald Knuth"};

  int failures_allowed = 0;
  for (int op = 0; op < params.operations; ++op) {
    bool via_device =
        !population.empty() && rng.Bernoulli(params.ddu_fraction);
    double action = rng.NextDouble();
    if (population.empty() || action < 0.4) {
      // Provision a new person.
      std::string extension = "4" + rng.DigitString(3);
      bool exists = false;
      for (const std::string& e : population) {
        if (e == extension) exists = true;
      }
      if (exists) continue;
      std::string name =
          std::string(rng.Choice(std::vector<std::string>(
              std::begin(kNames), std::end(kNames)))) +
          " " + extension;  // Unique cn per extension.
      Status status = system_->AddPerson(
          name, {{"telephoneNumber", "+1 908 582 " + extension}});
      ASSERT_TRUE(status.ok()) << status;
      population.push_back(extension);
    } else if (action < 0.85) {
      // Update an existing person's room.
      const std::string& extension = rng.Choice(population);
      std::string room = rng.Choice(std::vector<std::string>(
          std::begin(kRooms), std::end(kRooms)));
      if (via_device) {
        auto reply = system_->pbx("pbx1")->ExecuteCommand(
            "change station " + extension + " Room " + room);
        ASSERT_TRUE(reply.ok()) << reply.status();
      } else {
        auto found = system_->ldap_filter().FindByAttr(
            "DefinityExtension", extension);
        ASSERT_TRUE(found.ok());
        ASSERT_TRUE(found->has_value());
        Status status = client.Replace((*found)->dn().ToString(),
                                       "roomNumber", room);
        ASSERT_TRUE(status.ok()) << status;
      }
    } else {
      // Deprovision through the directory.
      size_t index = rng.Uniform(population.size());
      std::string extension = population[index];
      auto found = system_->ldap_filter().FindByAttr(
          "DefinityExtension", extension);
      ASSERT_TRUE(found.ok());
      if (found->has_value()) {
        Status status = client.Delete((*found)->dn().ToString());
        ASSERT_TRUE(status.ok()) << status;
      }
      population.erase(population.begin() + static_cast<long>(index));
    }
  }
  (void)failures_allowed;

  VerifyConverged();
  EXPECT_EQ(system_->update_manager().stats().errors, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ConsistencyPropertyTest,
    ::testing::Values(PropertyParams{1, 60, 0.0},
                      PropertyParams{2, 60, 0.5},
                      PropertyParams{3, 60, 1.0},
                      PropertyParams{4, 120, 0.3},
                      PropertyParams{5, 120, 0.7},
                      PropertyParams{20260705, 200, 0.5}));

/// After faults + resync, the same convergence property holds.
TEST(ConsistencyRecoveryTest, ConvergesAfterLostNotificationsAndResync) {
  auto system_or = MetaCommSystem::Create(SystemConfig{});
  ASSERT_TRUE(system_or.ok());
  auto& system = **system_or;
  Random rng(99);

  for (int i = 0; i < 10; ++i) {
    std::string extension = "4" + std::to_string(100 + i);
    ASSERT_TRUE(system
                    .AddPerson("Person " + extension,
                               {{"telephoneNumber",
                                 "+1 908 582 " + extension}})
                    .ok());
  }
  // Lose a random batch of device updates.
  system.pbx("pbx1")->faults().set_drop_notifications(true);
  for (int i = 0; i < 10; i += 2) {
    std::string extension = "4" + std::to_string(100 + i);
    ASSERT_TRUE(system.pbx("pbx1")
                    ->ExecuteCommand("change station " + extension +
                                     " Room LOST-" + std::to_string(i))
                    .ok());
  }
  system.pbx("pbx1")->faults().set_drop_notifications(false);

  ASSERT_TRUE(system.update_manager().Synchronize("pbx1").ok());

  ldap::Client client = system.NewClient();
  for (int i = 0; i < 10; i += 2) {
    std::string extension = "4" + std::to_string(100 + i);
    auto found =
        system.ldap_filter().FindByAttr("DefinityExtension", extension);
    ASSERT_TRUE(found.ok());
    ASSERT_TRUE(found->has_value());
    EXPECT_EQ((*found)->GetFirst("roomNumber"),
              "LOST-" + std::to_string(i));
  }
}

}  // namespace
}  // namespace metacomm::core
