#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/random.h"
#include "core/integrated_schema.h"
#include "core/metacomm.h"

namespace metacomm::core {
namespace {

/// Property-based consistency checks: after arbitrary interleavings of
/// LDAP updates and direct device updates, all repositories agree on
/// the shared fields — MetaComm's central claim.
struct PropertyParams {
  uint64_t seed;
  int operations;
  double ddu_fraction;  // Probability an operation is a DDU.
};

/// Checks that every person entry agrees with the PBX and MP images
/// of the same user on all mapped fields.
void VerifyRepositoriesConverged(MetaCommSystem& system) {
  ldap::Client client = system.NewClient();
  auto people = client.Search("ou=People,o=Lucent",
                              "(objectClass=person)");
  ASSERT_TRUE(people.ok());
  for (const ldap::Entry& entry : *people) {
    SCOPED_TRACE(entry.dn().ToString());
    std::string extension = entry.GetFirst("DefinityExtension");
    if (!extension.empty()) {
      auto station = system.pbx("pbx1")->GetRecord(extension);
      ASSERT_TRUE(station.ok())
          << "PBX missing station " << extension << " for "
          << entry.dn().ToString();
      EXPECT_EQ(station->GetFirst("Name"), entry.GetFirst("cn"));
      if (entry.Has("roomNumber")) {
        EXPECT_EQ(station->GetFirst("Room"),
                  entry.GetFirst("roomNumber"));
      }
      EXPECT_EQ("+1 908 582 " + extension,
                entry.GetFirst("telephoneNumber"));
    }
    std::string mailbox_number = entry.GetFirst("MpMailboxNumber");
    if (!mailbox_number.empty()) {
      auto mailbox = system.mp("mp1")->GetRecord(mailbox_number);
      ASSERT_TRUE(mailbox.ok())
          << "MP missing mailbox " << mailbox_number;
      EXPECT_EQ(mailbox->GetFirst("SubscriberName"),
                entry.GetFirst("cn"));
      EXPECT_EQ(mailbox->GetFirst("SubscriberId"),
                entry.GetFirst("MpSubscriberId"));
    }
  }
  // And the reverse inclusion: every station corresponds to an entry.
  auto dump = system.pbx("pbx1")->DumpAll();
  ASSERT_TRUE(dump.ok());
  for (const lexpress::Record& station : *dump) {
    auto found = system.ldap_filter().FindByAttr(
        "DefinityExtension", station.GetFirst("Extension"));
    ASSERT_TRUE(found.ok());
    EXPECT_TRUE(found->has_value())
        << "orphan station " << station.GetFirst("Extension");
  }
}

class ConsistencyPropertyTest
    : public ::testing::TestWithParam<PropertyParams> {
 protected:
  void SetUp() override {
    auto system = MetaCommSystem::Create(SystemConfig{});
    ASSERT_TRUE(system.ok()) << system.status();
    system_ = std::move(*system);
  }

  void VerifyConverged() { VerifyRepositoriesConverged(*system_); }

  std::unique_ptr<MetaCommSystem> system_;
};

TEST_P(ConsistencyPropertyTest, RandomWorkloadConverges) {
  const PropertyParams& params = GetParam();
  Random rng(params.seed);
  ldap::Client client = system_->NewClient();

  std::vector<std::string> population;  // Extensions in play.
  const char* const kRooms[] = {"1A-1", "2B-2", "3C-3", "4D-4"};
  const char* const kNames[] = {"Ada Lovelace", "Grace Hopper",
                                "Edsger Dijkstra", "Barbara Liskov",
                                "Donald Knuth"};

  int failures_allowed = 0;
  for (int op = 0; op < params.operations; ++op) {
    bool via_device =
        !population.empty() && rng.Bernoulli(params.ddu_fraction);
    double action = rng.NextDouble();
    if (population.empty() || action < 0.4) {
      // Provision a new person.
      std::string extension = "4" + rng.DigitString(3);
      bool exists = false;
      for (const std::string& e : population) {
        if (e == extension) exists = true;
      }
      if (exists) continue;
      std::string name =
          std::string(rng.Choice(std::vector<std::string>(
              std::begin(kNames), std::end(kNames)))) +
          " " + extension;  // Unique cn per extension.
      Status status = system_->AddPerson(
          name, {{"telephoneNumber", "+1 908 582 " + extension}});
      ASSERT_TRUE(status.ok()) << status;
      population.push_back(extension);
    } else if (action < 0.85) {
      // Update an existing person's room.
      const std::string& extension = rng.Choice(population);
      std::string room = rng.Choice(std::vector<std::string>(
          std::begin(kRooms), std::end(kRooms)));
      if (via_device) {
        auto reply = system_->pbx("pbx1")->ExecuteCommand(
            "change station " + extension + " Room " + room);
        ASSERT_TRUE(reply.ok()) << reply.status();
      } else {
        auto found = system_->ldap_filter().FindByAttr(
            "DefinityExtension", extension);
        ASSERT_TRUE(found.ok());
        ASSERT_TRUE(found->has_value());
        Status status = client.Replace((*found)->dn().ToString(),
                                       "roomNumber", room);
        ASSERT_TRUE(status.ok()) << status;
      }
    } else {
      // Deprovision through the directory.
      size_t index = rng.Uniform(population.size());
      std::string extension = population[index];
      auto found = system_->ldap_filter().FindByAttr(
          "DefinityExtension", extension);
      ASSERT_TRUE(found.ok());
      if (found->has_value()) {
        Status status = client.Delete((*found)->dn().ToString());
        ASSERT_TRUE(status.ok()) << status;
      }
      population.erase(population.begin() + static_cast<long>(index));
    }
  }
  (void)failures_allowed;

  VerifyConverged();
  EXPECT_EQ(system_->update_manager().stats().errors, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ConsistencyPropertyTest,
    ::testing::Values(PropertyParams{1, 60, 0.0},
                      PropertyParams{2, 60, 0.5},
                      PropertyParams{3, 60, 1.0},
                      PropertyParams{4, 120, 0.3},
                      PropertyParams{5, 120, 0.7},
                      PropertyParams{20260705, 200, 0.5}));

/// After faults + resync, the same convergence property holds.
TEST(ConsistencyRecoveryTest, ConvergesAfterLostNotificationsAndResync) {
  auto system_or = MetaCommSystem::Create(SystemConfig{});
  ASSERT_TRUE(system_or.ok());
  auto& system = **system_or;
  Random rng(99);

  for (int i = 0; i < 10; ++i) {
    std::string extension = "4" + std::to_string(100 + i);
    ASSERT_TRUE(system
                    .AddPerson("Person " + extension,
                               {{"telephoneNumber",
                                 "+1 908 582 " + extension}})
                    .ok());
  }
  // Lose a random batch of device updates.
  system.pbx("pbx1")->faults().set_drop_notifications(true);
  for (int i = 0; i < 10; i += 2) {
    std::string extension = "4" + std::to_string(100 + i);
    ASSERT_TRUE(system.pbx("pbx1")
                    ->ExecuteCommand("change station " + extension +
                                     " Room LOST-" + std::to_string(i))
                    .ok());
  }
  system.pbx("pbx1")->faults().set_drop_notifications(false);

  ASSERT_TRUE(system.update_manager().Synchronize("pbx1").ok());

  ldap::Client client = system.NewClient();
  for (int i = 0; i < 10; i += 2) {
    std::string extension = "4" + std::to_string(100 + i);
    auto found =
        system.ldap_filter().FindByAttr("DefinityExtension", extension);
    ASSERT_TRUE(found.ok());
    ASSERT_TRUE(found->has_value());
    EXPECT_EQ((*found)->GetFirst("roomNumber"),
              "LOST-" + std::to_string(i));
  }
}

/// Randomized fault schedule: the messaging platform fails a fraction
/// of its commands (deterministically, under a seed) while a random
/// workload runs. Client writes keep succeeding — failures land in the
/// error log — and once the faults clear, the error-log-driven repair
/// protocol must reach the same convergence property as the fault-free
/// runs, with every repository backlog drained.
struct FaultPropertyParams {
  uint64_t seed;
  int operations;
  double fault_probability;
};

class FaultRecoveryPropertyTest
    : public ::testing::TestWithParam<FaultPropertyParams> {};

TEST_P(FaultRecoveryPropertyTest, RandomFaultsThenRepairConverges) {
  const FaultPropertyParams& params = GetParam();
  SystemConfig config;
  config.um.breaker_failure_threshold = 2;
  config.um.breaker_open_backoff_micros = 1'000;
  config.um.breaker_max_backoff_micros = 20'000;
  auto system_or = MetaCommSystem::Create(config);
  ASSERT_TRUE(system_or.ok()) << system_or.status();
  auto& system = **system_or;

  devices::FaultInjector& faults = system.mp("mp1")->faults();
  faults.set_seed(params.seed);
  faults.set_error_probability(params.fault_probability);

  Random rng(params.seed);
  ldap::Client client = system.NewClient();
  std::vector<std::string> population;
  const char* const kRooms[] = {"1A-1", "2B-2", "3C-3"};

  for (int op = 0; op < params.operations; ++op) {
    double action = rng.NextDouble();
    if (population.empty() || action < 0.45) {
      std::string extension = "4" + rng.DigitString(3);
      bool exists = false;
      for (const std::string& e : population) {
        if (e == extension) exists = true;
      }
      if (exists) continue;
      Status status = system.AddPerson(
          "Person " + extension,
          {{"telephoneNumber", "+1 908 582 " + extension}});
      ASSERT_TRUE(status.ok()) << status;
      population.push_back(extension);
    } else if (action < 0.8) {
      const std::string& extension = rng.Choice(population);
      auto found = system.ldap_filter().FindByAttr("DefinityExtension",
                                                   extension);
      ASSERT_TRUE(found.ok());
      ASSERT_TRUE(found->has_value());
      std::string room = rng.Choice(std::vector<std::string>(
          std::begin(kRooms), std::end(kRooms)));
      ASSERT_TRUE(client
                      .Replace((*found)->dn().ToString(), "roomNumber",
                               room)
                      .ok());
    } else if (action < 0.92) {
      const std::string& extension = rng.Choice(population);
      auto reply = system.pbx("pbx1")->ExecuteCommand(
          "change station " + extension + " Room DDU-" +
          rng.DigitString(2));
      ASSERT_TRUE(reply.ok()) << reply.status();
    } else {
      size_t index = rng.Uniform(population.size());
      std::string extension = population[index];
      auto found = system.ldap_filter().FindByAttr("DefinityExtension",
                                                   extension);
      ASSERT_TRUE(found.ok());
      if (found->has_value()) {
        ASSERT_TRUE(client.Delete((*found)->dn().ToString()).ok());
      }
      population.erase(population.begin() + static_cast<long>(index));
    }
  }

  // The outage ends; the repair protocol takes over. Sleep past the
  // (capped) breaker backoff so replay probes are admitted.
  faults.set_error_probability(0.0);
  RealClock::Get()->SleepMicros(30'000);
  ASSERT_TRUE(system.update_manager().RunRepairPass().ok());

  for (const UpdateManager::Stats::RepositoryStats& repo :
       system.update_manager().stats().repositories) {
    EXPECT_EQ(repo.replay_backlog, 0u) << repo.name;
  }
  VerifyRepositoriesConverged(system);
}

INSTANTIATE_TEST_SUITE_P(
    FaultSeeds, FaultRecoveryPropertyTest,
    ::testing::Values(FaultPropertyParams{7, 60, 0.15},
                      FaultPropertyParams{11, 60, 0.35},
                      FaultPropertyParams{13, 100, 0.25}));

}  // namespace
}  // namespace metacomm::core
