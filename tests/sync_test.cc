#include <gtest/gtest.h>

#include "core/integrated_schema.h"
#include "core/metacomm.h"

namespace metacomm::core {
namespace {

/// Synchronization scenarios (paper §4.4, §5.1): initial population,
/// recovery from disconnects and lost notifications.
class SyncTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto system = MetaCommSystem::Create(SystemConfig{});
    ASSERT_TRUE(system.ok()) << system.status();
    system_ = std::move(*system);
  }

  std::unique_ptr<MetaCommSystem> system_;
};

TEST_F(SyncTest, InitialLoadPopulatesDirectoryFromDevices) {
  // Pre-existing device data, empty directory — the "populate the
  // directory initially" case (§4.4). Stations are configured before
  // MetaComm attaches (notifications dropped to simulate pre-history).
  devices::DefinityPbx* pbx = system_->pbx("pbx1");
  pbx->faults().set_drop_notifications(true);
  ASSERT_TRUE(
      pbx->ExecuteCommand("add station 4567 Name \"John Doe\"").ok());
  ASSERT_TRUE(
      pbx->ExecuteCommand("add station 4568 Name \"Pat Smith\"").ok());
  pbx->faults().set_drop_notifications(false);

  ASSERT_TRUE(system_->update_manager().Synchronize("pbx1").ok());

  ldap::Client client = system_->NewClient();
  auto john = client.Get("cn=John Doe,ou=People,o=Lucent");
  ASSERT_TRUE(john.ok()) << john.status();
  EXPECT_EQ(john->GetFirst("DefinityExtension"), "4567");
  auto pat = client.Get("cn=Pat Smith,ou=People,o=Lucent");
  ASSERT_TRUE(pat.ok());
  EXPECT_EQ(pat->GetFirst("telephoneNumber"), "+1 908 582 4568");

  // Propagation during sync also provisioned the messaging platform
  // ("other devices that share the data being synchronized", §5.1).
  EXPECT_TRUE(system_->mp("mp1")->GetRecord("4567").ok());
  EXPECT_TRUE(system_->mp("mp1")->GetRecord("4568").ok());
}

TEST_F(SyncTest, ResyncRepairsLostDeviceUpdates) {
  ASSERT_TRUE(system_
                  ->AddPerson("John Doe",
                              {{"telephoneNumber", "+1 908 582 4567"}})
                  .ok());
  devices::DefinityPbx* pbx = system_->pbx("pbx1");
  pbx->faults().set_drop_notifications(true);
  ASSERT_TRUE(
      pbx->ExecuteCommand("change station 4567 Room HIDDEN-1").ok());
  pbx->faults().set_drop_notifications(false);

  ldap::Client client = system_->NewClient();
  auto before = client.Get("cn=John Doe,ou=People,o=Lucent");
  ASSERT_TRUE(before.ok());
  EXPECT_FALSE(before->Has("roomNumber"));

  ASSERT_TRUE(system_->update_manager().Synchronize("pbx1").ok());
  auto after = client.Get("cn=John Doe,ou=People,o=Lucent");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->GetFirst("roomNumber"), "HIDDEN-1");
}

TEST_F(SyncTest, ResyncPushesDirectoryEntriesToWipedDevice) {
  // The device lost state (replacement hardware): directory entries in
  // its partition are pushed back.
  ASSERT_TRUE(system_
                  ->AddPerson("John Doe",
                              {{"telephoneNumber", "+1 908 582 4567"}})
                  .ok());
  devices::DefinityPbx* pbx = system_->pbx("pbx1");
  pbx->faults().set_drop_notifications(true);
  ASSERT_TRUE(pbx->ExecuteCommand("remove station 4567").ok());
  pbx->faults().set_drop_notifications(false);
  ASSERT_EQ(pbx->StationCount(), 0u);

  ASSERT_TRUE(system_->update_manager().Synchronize("pbx1").ok());
  auto station = pbx->GetRecord("4567");
  ASSERT_TRUE(station.ok()) << station.status();
  EXPECT_EQ(station->GetFirst("Name"), "John Doe");
}

TEST_F(SyncTest, SynchronizeAllCoversEveryDevice) {
  devices::DefinityPbx* pbx = system_->pbx("pbx1");
  pbx->faults().set_drop_notifications(true);
  ASSERT_TRUE(pbx->ExecuteCommand("add station 4567 Name \"A B\"").ok());
  pbx->faults().set_drop_notifications(false);
  ASSERT_TRUE(system_->update_manager().SynchronizeAll().ok());
  EXPECT_GE(system_->update_manager().stats().syncs, 2u);
  ldap::Client client = system_->NewClient();
  EXPECT_TRUE(client.Get("cn=A B,ou=People,o=Lucent").ok());
}

TEST_F(SyncTest, SyncOfDisconnectedDeviceFails) {
  system_->pbx("pbx1")->faults().set_disconnected(true);
  Status status = system_->update_manager().Synchronize("pbx1");
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  // The quiesce window was released: normal updates proceed.
  EXPECT_FALSE(system_->gateway().IsQuiesced());
  system_->pbx("pbx1")->faults().set_disconnected(false);
  EXPECT_TRUE(system_->update_manager().Synchronize("pbx1").ok());
}

TEST_F(SyncTest, SyncUnknownDeviceRejected) {
  EXPECT_EQ(system_->update_manager().Synchronize("pbx42").code(),
            StatusCode::kNotFound);
}

TEST_F(SyncTest, UmCrashBetweenPairRepairedByResync) {
  // §5.1's catastrophic case: the UM dies between ModifyRDN and
  // Modify. Readers see the inconsistent entry until the restart
  // resynchronizes.
  ASSERT_TRUE(system_
                  ->AddPerson("John Doe",
                              {{"telephoneNumber", "+1 908 582 4567"}})
                  .ok());
  system_->ldap_filter().set_pair_crash_hook(
      [] { return Status::Internal("simulated UM crash"); });

  // DDU changing both the name (RDN) and the room (non-RDN attribute):
  // the "complex DDU" the paper analyzes.
  auto reply = system_->pbx("pbx1")->ExecuteCommand(
      "change station 4567 Name \"John Q Doe\" Room CRASH-1");
  ASSERT_TRUE(reply.ok());  // The device op itself succeeded.

  // Inconsistency window: renamed, but the room never made it.
  ldap::Client client = system_->NewClient();
  auto entry = client.Get("cn=John Q Doe,ou=People,o=Lucent");
  ASSERT_TRUE(entry.ok());
  EXPECT_NE(entry->GetFirst("roomNumber"), "CRASH-1");

  // "When the UM restarts and re-synchronizes the directory with the
  // devices, the inconsistencies will be eliminated."
  system_->ldap_filter().set_pair_crash_hook(nullptr);
  ASSERT_TRUE(system_->update_manager().Synchronize("pbx1").ok());
  entry = client.Get("cn=John Q Doe,ou=People,o=Lucent");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->GetFirst("roomNumber"), "CRASH-1");
}

}  // namespace
}  // namespace metacomm::core
