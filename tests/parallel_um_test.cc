#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/integrated_schema.h"
#include "core/metacomm.h"

namespace metacomm::core {
namespace {

/// The parallel Update Manager: N workers over a DN-sharded queue.
/// Parameterized on worker_threads so every guarantee is checked both
/// in the paper's single-coordinator shape (1) and in the parallel
/// shape (4).
class ParallelUmTest : public ::testing::TestWithParam<int> {
 protected:
  void BuildSystem(SystemConfig config) {
    config.um.threaded = true;
    config.um.worker_threads = GetParam();
    auto system = MetaCommSystem::Create(std::move(config));
    ASSERT_TRUE(system.ok()) << system.status();
    system_ = std::move(*system);
  }

  void SetUp() override { BuildSystem(SystemConfig{}); }

  void TearDown() override {
    if (system_ != nullptr) system_->update_manager().Stop();
  }

  /// Polls until `pred` holds or ~5s elapse.
  template <typename Pred>
  bool Eventually(Pred pred) {
    for (int i = 0; i < 5000; ++i) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return pred();
  }

  std::unique_ptr<MetaCommSystem> system_;
};

/// Two device-administrator threads (PBX and MP) plus an LDAP client
/// thread hammer ONE entry. This is the workload that exposed the
/// lock-session aliasing bug: when every DDU locked under the shared
/// UM session, concurrent DDUs on the same entry both "held" the lock
/// re-entrantly and raced; with per-update lock sessions they
/// serialize, so every repository converges with no lost updates.
TEST_P(ParallelUmTest, SameEntryDduAndLdapStressConverges) {
  ASSERT_TRUE(system_
                  ->AddPerson("Hot Entry",
                              {{"telephoneNumber", "+1 908 582 4567"}})
                  .ok());
  constexpr int kWrites = 25;
  const std::string dn = "cn=Hot Entry,ou=People,o=Lucent";
  std::atomic<int> failures{0};

  std::thread pbx_admin([this, &failures] {
    for (int i = 0; i < kWrites; ++i) {
      auto reply = system_->pbx("pbx1")->ExecuteCommand(
          "change station 4567 Room PR-" + std::to_string(i));
      if (!reply.ok()) failures.fetch_add(1);
    }
  });
  std::thread mp_admin([this, &failures] {
    for (int i = 0; i < kWrites; ++i) {
      auto reply = system_->mp("mp1")->ExecuteCommand(
          "MODIFY MAILBOX 4567 Pin=" + std::to_string(7000 + i));
      if (!reply.ok()) failures.fetch_add(1);
    }
  });
  std::thread ldap_client([this, &dn, &failures] {
    ldap::Client client = system_->NewClient();
    for (int i = 0; i < kWrites; ++i) {
      Status status = client.Replace(dn, "roomNumber",
                                     "L-" + std::to_string(i));
      if (!status.ok()) failures.fetch_add(1);
    }
  });
  pbx_admin.join();
  mp_admin.join();
  ldap_client.join();
  EXPECT_EQ(failures.load(), 0);

  // No lost update on the MP axis: only the MP thread writes pins, its
  // commands are issued back-to-back, and per-entry FIFO must carry
  // the LAST one into the directory and back to the device.
  const std::string last_pin = std::to_string(7000 + kWrites - 1);
  ldap::Client client = system_->NewClient();
  std::string dir_pin;
  std::string device_pin;
  EXPECT_TRUE(Eventually([&] {
    auto entry = client.Get(dn);
    auto mailbox = system_->mp("mp1")->GetRecord("4567");
    if (!entry.ok() || !mailbox.ok()) return false;
    dir_pin = entry->GetFirst("MpPin");
    device_pin = mailbox->GetFirst("Pin");
    return dir_pin == last_pin && device_pin == last_pin;
  })) << "want pin " << last_pin << ", directory MpPin=" << dir_pin
      << ", mp device Pin=" << device_pin;

  // Convergence on the contended axis: roomNumber was written from
  // both sides, so the winner is timing-dependent — but directory and
  // PBX must agree on it, and it must be one of the written values.
  std::string final_room;
  EXPECT_TRUE(Eventually([&] {
    auto entry = client.Get(dn);
    auto station = system_->pbx("pbx1")->GetRecord("4567");
    if (!entry.ok() || !station.ok()) return false;
    final_room = entry->GetFirst("roomNumber");
    return !final_room.empty() &&
           final_room == station->GetFirst("Room");
  }));
  EXPECT_TRUE(final_room.rfind("PR-", 0) == 0 ||
              final_room.rfind("L-", 0) == 0)
      << "converged to a value nobody wrote: " << final_room;

  EXPECT_EQ(system_->update_manager().stats().errors, 0u);
  // The worker that applied the final item may still be between the
  // directory write and its lock release — poll, don't snapshot.
  EXPECT_TRUE(Eventually([&] {
    return !system_->gateway().lock_table().IsLocked(*ldap::Dn::Parse(dn));
  }));
}

/// Distinct entries from many threads: the sharded queue must fan the
/// work out without losing or cross-ordering anything.
TEST_P(ParallelUmTest, DistinctEntriesPropagateInParallel) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 16;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t, &failures] {
      for (int i = 0; i < kPerThread; ++i) {
        std::string extension = std::to_string(4000 + t * 100 + i);
        Status status = system_->AddPerson(
            "Person " + extension,
            {{"telephoneNumber", "+1 908 582 " + extension}});
        if (!status.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(system_->pbx("pbx1")->StationCount(),
            static_cast<size_t>(kThreads * kPerThread));
  EXPECT_EQ(system_->mp("mp1")->MailboxCount(),
            static_cast<size_t>(kThreads * kPerThread));

  UpdateManager::Stats stats = system_->update_manager().stats();
  EXPECT_EQ(stats.errors, 0u);
  ASSERT_EQ(stats.shards.size(), static_cast<size_t>(GetParam()));
  uint64_t enqueued = 0;
  for (const UpdateManager::ShardStats& shard : stats.shards) {
    enqueued += shard.enqueued;
  }
  EXPECT_EQ(enqueued, static_cast<uint64_t>(kThreads * kPerThread));
}

/// A DDU racing a client LDAP write must be serialized behind it, not
/// dropped: with a try-once gateway lock (timeout 0) the retry/backoff
/// loop is the only thing standing between the device update and the
/// §4.4 error log.
TEST_P(ParallelUmTest, DduRetriesContendedLockInsteadOfDropping) {
  SystemConfig config;
  config.gateway.lock_timeout_micros = 0;  // Try-once locks.
  config.um.ddu_lock_retries = 50;
  config.um.ddu_lock_retry_backoff_micros = 1'000;
  BuildSystem(std::move(config));
  ASSERT_TRUE(system_
                  ->AddPerson("Race Target",
                              {{"telephoneNumber", "+1 908 582 4999"}})
                  .ok());

  // Stand in for the racing client write: hold the entry lock from a
  // foreign session while the DDU arrives, then let go.
  ldap::Dn dn = *ldap::Dn::Parse("cn=Race Target,ou=People,o=Lucent");
  uint64_t holder = system_->gateway().NewSession();
  ASSERT_TRUE(system_->gateway().LockEntry(dn, holder).ok());

  std::thread device_admin([this] {
    auto reply = system_->pbx("pbx1")->ExecuteCommand(
        "change station 4999 Room RETRY-1");
    EXPECT_TRUE(reply.ok()) << reply.status();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  system_->gateway().UnlockEntry(dn, holder);
  device_admin.join();

  ldap::Client client = system_->NewClient();
  EXPECT_TRUE(Eventually([&] {
    auto entry = client.Get("cn=Race Target,ou=People,o=Lucent");
    return entry.ok() && entry->GetFirst("roomNumber") == "RETRY-1";
  }));
  UpdateManager::Stats stats = system_->update_manager().stats();
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_GE(stats.lock_retries, 1u);
}

/// Stop() with work still queued: the drained items must release
/// their entry locks and fail their waiting callers — not leak locks
/// and hang them forever.
TEST_P(ParallelUmTest, StopReleasesQueuedLocksAndFailsCallers) {
  SystemConfig config;
  // Slow workers so updates pile up behind the one in flight.
  config.um.artificial_processing_delay_micros = 100'000;
  BuildSystem(std::move(config));
  // Provision with a fast system shape is not possible here, so keep
  // the population tiny (each AddPerson pays the artificial delay).
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(system_
                    ->AddPerson("Q " + std::to_string(4500 + i),
                                {{"telephoneNumber",
                                  "+1 908 582 " + std::to_string(4500 + i)}})
                    .ok());
  }

  // A client write that will still be queued (or in flight) at Stop:
  // it must return — Ok if a worker got to it, Unavailable if drained.
  std::atomic<bool> replied{false};
  std::thread client_thread([this, &replied] {
    ldap::Client client = system_->NewClient();
    Status status = client.Replace("cn=Q 4500,ou=People,o=Lucent",
                                   "roomNumber", "LAST");
    EXPECT_TRUE(status.ok() ||
                status.code() == StatusCode::kUnavailable)
        << status;
    replied.store(true);
  });
  // DDUs against the other entries: submission returns at enqueue, so
  // their entry locks are held by items sitting in the queue.
  for (int i = 1; i < 3; ++i) {
    auto reply = system_->pbx("pbx1")->ExecuteCommand(
        "change station " + std::to_string(4500 + i) + " Room STOP-" +
        std::to_string(i));
    ASSERT_TRUE(reply.ok()) << reply.status();
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  system_->update_manager().Stop();

  // The client's own gateway lock on Q 4500 is released only once its
  // Replace returns, so join before asserting no locks remain.
  client_thread.join();
  EXPECT_TRUE(replied.load());
  for (int i = 0; i < 3; ++i) {
    ldap::Dn dn = *ldap::Dn::Parse("cn=Q " + std::to_string(4500 + i) +
                                   ",ou=People,o=Lucent");
    EXPECT_FALSE(system_->gateway().lock_table().IsLocked(dn))
        << "entry lock leaked across Stop(): " << dn.ToString();
  }
  // New client writes after Stop are refused, not hung.
  ldap::Client client = system_->NewClient();
  Status after = client.Replace("cn=Q 4500,ou=People,o=Lucent",
                                "roomNumber", "AFTER-STOP");
  EXPECT_EQ(after.code(), StatusCode::kUnavailable) << after;
}

/// Stop() racing a popped-but-unfinished batch: a worker holding a
/// multi-item batch (max_batch_size > 1) must fail the units it has
/// not yet propagated with Unavailable and release their entry locks —
/// the drain guarantee extends past the queue into partially-processed
/// batches.
TEST_P(ParallelUmTest, StopDrainsPartiallyPoppedBatches) {
  SystemConfig config;
  config.um.max_batch_size = 8;
  // Each wave pays this, so a popped batch of DDUs straddles Stop().
  config.um.artificial_processing_delay_micros = 50'000;
  BuildSystem(std::move(config));
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(system_
                    ->AddPerson("B " + std::to_string(4600 + i),
                                {{"telephoneNumber",
                                  "+1 908 582 " + std::to_string(4600 + i)}})
                    .ok());
  }

  // DDUs return at enqueue time; their entry locks ride the queue (and,
  // after a pop, the worker's in-hand batch).
  for (int i = 0; i < 4; ++i) {
    auto reply = system_->pbx("pbx1")->ExecuteCommand(
        "change station " + std::to_string(4600 + i) + " Room DRAIN-" +
        std::to_string(i));
    ASSERT_TRUE(reply.ok()) << reply.status();
  }
  // Let a worker pop its batch and enter the first wave's delay.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  system_->update_manager().Stop();

  // Every lock must be free afterwards — both the queue-drained items
  // and the ones abandoned mid-batch.
  for (int i = 0; i < 4; ++i) {
    ldap::Dn dn = *ldap::Dn::Parse("cn=B " + std::to_string(4600 + i) +
                                   ",ou=People,o=Lucent");
    EXPECT_FALSE(system_->gateway().lock_table().IsLocked(dn))
        << "entry lock leaked across Stop(): " << dn.ToString();
  }
  // Callers arriving after Stop get Unavailable, not a hang.
  ldap::Client client = system_->NewClient();
  Status after = client.Replace("cn=B 4600,ou=People,o=Lucent",
                                "roomNumber", "AFTER-STOP");
  EXPECT_EQ(after.code(), StatusCode::kUnavailable) << after;
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, ParallelUmTest,
                         ::testing::Values(1, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "workers_" +
                                  std::to_string(info.param);
                         });

}  // namespace
}  // namespace metacomm::core
