#include "ldap/schema.h"

#include <gtest/gtest.h>

#include "core/integrated_schema.h"

namespace metacomm::ldap {
namespace {

Entry MinimalPerson(const char* cn) {
  Entry entry(Dn::Root().Child(Rdn("cn", cn)));
  entry.Set("objectClass", {"top", "person"});
  entry.SetOne("cn", cn);
  entry.SetOne("sn", "Doe");
  return entry;
}

TEST(SchemaTest, StandardValidatesPerson) {
  Schema schema = Schema::Standard();
  EXPECT_TRUE(schema.ValidateEntry(MinimalPerson("John Doe")).ok());
}

TEST(SchemaTest, MissingMandatoryAttribute) {
  Schema schema = Schema::Standard();
  Entry entry = MinimalPerson("John Doe");
  entry.Remove("sn");
  Status status = schema.ValidateEntry(entry);
  EXPECT_EQ(status.code(), StatusCode::kSchemaViolation);
}

TEST(SchemaTest, NoObjectClass) {
  Schema schema = Schema::Standard();
  Entry entry = MinimalPerson("John Doe");
  entry.Remove("objectClass");
  EXPECT_EQ(schema.ValidateEntry(entry).code(),
            StatusCode::kSchemaViolation);
}

TEST(SchemaTest, UnknownObjectClass) {
  Schema schema = Schema::Standard();
  Entry entry = MinimalPerson("John Doe");
  entry.AddObjectClass("starfleetOfficer");
  EXPECT_EQ(schema.ValidateEntry(entry).code(),
            StatusCode::kSchemaViolation);
}

TEST(SchemaTest, AttributeNotAllowedByClasses) {
  Schema schema = Schema::Standard();
  Entry entry = MinimalPerson("John Doe");
  entry.SetOne("mail", "jd@lucent.com");  // inetOrgPerson only.
  EXPECT_EQ(schema.ValidateEntry(entry).code(),
            StatusCode::kSchemaViolation);
  entry.AddObjectClass("organizationalPerson");
  entry.AddObjectClass("inetOrgPerson");
  EXPECT_TRUE(schema.ValidateEntry(entry).ok());
}

TEST(SchemaTest, UndefinedAttributeType) {
  Schema schema = Schema::Standard();
  Entry entry = MinimalPerson("John Doe");
  entry.SetOne("frobnicator", "x");
  EXPECT_EQ(schema.ValidateEntry(entry).code(),
            StatusCode::kSchemaViolation);
}

TEST(SchemaTest, AliasResolves) {
  Schema schema = Schema::Standard();
  EXPECT_NE(schema.FindAttribute("commonName"), nullptr);
  EXPECT_EQ(schema.FindAttribute("commonName"),
            schema.FindAttribute("cn"));
  EXPECT_NE(schema.FindAttribute("surname"), nullptr);
}

TEST(SchemaTest, SingleValuedEnforced) {
  Schema schema = Schema::Standard();
  Entry entry = MinimalPerson("John Doe");
  entry.AddObjectClass("organizationalPerson");
  entry.AddObjectClass("inetOrgPerson");
  entry.Set("employeeNumber", {"1", "2"});
  EXPECT_EQ(schema.ValidateEntry(entry).code(),
            StatusCode::kSchemaViolation);
}

TEST(SchemaTest, TelephoneSyntax) {
  Schema schema = Schema::Standard();
  Entry entry = MinimalPerson("John Doe");
  entry.SetOne("telephoneNumber", "+1 (908) 582-9000");
  EXPECT_TRUE(schema.ValidateEntry(entry).ok());
  entry.SetOne("telephoneNumber", "call me");
  EXPECT_EQ(schema.ValidateEntry(entry).code(),
            StatusCode::kSchemaViolation);
}

TEST(SchemaTest, RdnValueMustBePresent) {
  Schema schema = Schema::Standard();
  Entry entry = MinimalPerson("John Doe");
  entry.SetOne("cn", "Different Name");  // RDN says cn=John Doe.
  EXPECT_EQ(schema.ValidateEntry(entry).code(),
            StatusCode::kSchemaViolation);
}

TEST(SchemaTest, MixedUnrelatedStructuralClassesRejected) {
  Schema schema = Schema::Standard();
  Entry entry = MinimalPerson("John Doe");
  entry.AddObjectClass("organization");
  entry.SetOne("o", "Lucent");
  EXPECT_EQ(schema.ValidateEntry(entry).code(),
            StatusCode::kSchemaViolation);
}

TEST(SchemaTest, StructuralChainIsAllowed) {
  Schema schema = Schema::Standard();
  Entry entry = MinimalPerson("John Doe");
  entry.AddObjectClass("organizationalPerson");
  entry.AddObjectClass("inetOrgPerson");
  EXPECT_TRUE(schema.ValidateEntry(entry).ok());
}

TEST(SchemaTest, AuxiliaryClassMayNotDeclareMust) {
  // Paper §5.2: auxiliary classes cannot have mandatory attributes.
  Schema schema = Schema::Standard();
  ObjectClassDef aux;
  aux.name = "badAux";
  aux.kind = ObjectClassKind::kAuxiliary;
  aux.superior = "top";
  aux.must = {"cn"};
  EXPECT_EQ(schema.AddObjectClass(aux).code(),
            StatusCode::kSchemaViolation);
}

TEST(SchemaTest, DuplicateDefinitionsRejected) {
  Schema schema = Schema::Standard();
  AttributeTypeDef attr;
  attr.name = "cn";
  EXPECT_EQ(schema.AddAttributeType(attr).code(),
            StatusCode::kAlreadyExists);
  ObjectClassDef cls;
  cls.name = "person";
  cls.superior = "top";
  EXPECT_EQ(schema.AddObjectClass(cls).code(), StatusCode::kAlreadyExists);
}

TEST(SchemaTest, UnknownSuperiorRejected) {
  Schema schema = Schema::Standard();
  ObjectClassDef cls;
  cls.name = "orphan";
  cls.superior = "noSuchClass";
  EXPECT_EQ(schema.AddObjectClass(cls).code(), StatusCode::kNotFound);
}

// ---- Integrated schema (paper §5.2) ----

TEST(IntegratedSchemaTest, PersonWithDeviceAuxClasses) {
  Schema schema = core::BuildIntegratedSchema();
  Entry entry = MinimalPerson("John Doe");
  entry.AddObjectClass("organizationalPerson");
  entry.AddObjectClass("inetOrgPerson");
  entry.AddObjectClass(core::kDefinityUserClass);
  entry.AddObjectClass(core::kMpUserClass);
  entry.AddObjectClass(core::kMetacommObjectClass);
  entry.SetOne("DefinityExtension", "9000");
  entry.SetOne("MpMailboxNumber", "9000");
  entry.SetOne(core::kLastUpdaterAttr, "pbx1");
  EXPECT_TRUE(schema.ValidateEntry(entry).ok())
      << schema.ValidateEntry(entry);
}

TEST(IntegratedSchemaTest, DeviceAttrWithoutAuxClassRejected) {
  Schema schema = core::BuildIntegratedSchema();
  Entry entry = MinimalPerson("John Doe");
  entry.SetOne("DefinityExtension", "9000");
  EXPECT_EQ(schema.ValidateEntry(entry).code(),
            StatusCode::kSchemaViolation);
}

TEST(IntegratedSchemaTest, AuxClassWithoutAttrsIsLegalAnomaly) {
  // §5.2: "the presence of an auxiliary objectclass only indicates
  // that a person MAY use a device" — an entry can claim definityUser
  // yet have no DefinityExtension, and the schema cannot forbid it.
  Schema schema = core::BuildIntegratedSchema();
  Entry entry = MinimalPerson("John Doe");
  entry.AddObjectClass(core::kDefinityUserClass);
  EXPECT_TRUE(schema.ValidateEntry(entry).ok());
}

TEST(IntegratedSchemaTest, ApplyObjectClassesDerivesAuxClasses) {
  Entry entry(Dn::Root().Child(Rdn("cn", "Jill Lu")));
  entry.SetOne("cn", "Jill Lu");
  entry.SetOne("sn", "Lu");
  entry.SetOne("DefinityExtension", "9001");
  entry.SetOne(core::kLastUpdaterAttr, "pbx1");
  core::ApplyObjectClasses(&entry);
  EXPECT_TRUE(entry.HasObjectClass("inetOrgPerson"));
  EXPECT_TRUE(entry.HasObjectClass(core::kDefinityUserClass));
  EXPECT_FALSE(entry.HasObjectClass(core::kMpUserClass));
  EXPECT_TRUE(entry.HasObjectClass(core::kMetacommObjectClass));

  Schema schema = core::BuildIntegratedSchema();
  EXPECT_TRUE(schema.ValidateEntry(entry).ok())
      << schema.ValidateEntry(entry);
}

TEST(IntegratedSchemaTest, ErrorEntryValidates) {
  Schema schema = core::BuildIntegratedSchema();
  Entry entry(Dn::Root().Child(Rdn("cn", "error-1")));
  entry.Set("objectClass", {"top", core::kMetacommErrorClass});
  entry.SetOne("cn", "error-1");
  entry.SetOne("errorText", "NOT_FOUND: mailbox 9000");
  entry.SetOne("errorOp", "modify");
  EXPECT_TRUE(schema.ValidateEntry(entry).ok())
      << schema.ValidateEntry(entry);
}

}  // namespace
}  // namespace metacomm::ldap
