#include "common/status.h"

#include <gtest/gtest.h>

namespace metacomm {
namespace {

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::NotFound("no such object: cn=X");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "no such object: cn=X");
  EXPECT_EQ(status.ToString(), "NOT_FOUND: no such object: cn=X");
}

TEST(StatusTest, AllNamedConstructors) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Conflict("x").code(), StatusCode::kConflict);
  EXPECT_EQ(Status::PermissionDenied("x").code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(Status::SchemaViolation("x").code(),
            StatusCode::kSchemaViolation);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = Status::NotFound("gone");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> result(std::make_unique<int>(7));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 7);
}

namespace helpers {

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status UsesReturnIfError(int x) {
  METACOMM_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::Ok();
}

StatusOr<int> Doubler(int x) {
  if (x > 100) return Status::InvalidArgument("too big");
  return x * 2;
}

StatusOr<int> UsesAssignOrReturn(int x) {
  METACOMM_ASSIGN_OR_RETURN(int doubled, Doubler(x));
  return doubled + 1;
}

}  // namespace helpers

TEST(StatusMacrosTest, ReturnIfError) {
  EXPECT_TRUE(helpers::UsesReturnIfError(1).ok());
  EXPECT_EQ(helpers::UsesReturnIfError(-1).code(),
            StatusCode::kInvalidArgument);
}

TEST(StatusMacrosTest, AssignOrReturn) {
  StatusOr<int> ok = helpers::UsesAssignOrReturn(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 11);
  StatusOr<int> err = helpers::UsesAssignOrReturn(200);
  EXPECT_FALSE(err.ok());
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

}  // namespace
}  // namespace metacomm
