#include "ldap/query_planner.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ldap/backend.h"
#include "ldap/filter.h"

namespace metacomm::ldap {
namespace {

Dn MustParse(const char* text) {
  auto dn = Dn::Parse(text);
  EXPECT_TRUE(dn.ok()) << text;
  return *dn;
}

Filter MustParseFilter(const std::string& text) {
  auto filter = Filter::Parse(text);
  EXPECT_TRUE(filter.ok()) << text;
  return *filter;
}

/// Reference evaluator: the naive pre-order subtree scan the planner
/// must be indistinguishable from (same entries, same order).
void ScanNode(const Backend::TreeNode* node, const Filter& filter,
              std::vector<Entry>* out) {
  if (filter.Matches(node->entry)) out->push_back(node->entry);
  node->children.ForEach(
      [&](const std::string&,
          const std::shared_ptr<const Backend::TreeNode>& child) {
        ScanNode(child.get(), filter, out);
        return true;
      });
}

std::vector<Entry> ReferenceScan(const Backend& backend, const Dn& base,
                                 const Filter& filter) {
  Backend::SnapshotPtr snapshot = backend.GetSnapshot();
  const Backend::TreeNode* node = Backend::FindNode(*snapshot, base);
  std::vector<Entry> out;
  if (node == nullptr) return out;
  if (base.IsRoot()) {
    node->children.ForEach(
        [&](const std::string&,
            const std::shared_ptr<const Backend::TreeNode>& child) {
          ScanNode(child.get(), filter, &out);
          return true;
        });
  } else {
    ScanNode(node, filter, &out);
  }
  return out;
}

class QueryPlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Add("o=Lucent", {{"o", {"Lucent"}}, {"objectClass", {"top"}}});
    Add("ou=People,o=Lucent",
        {{"ou", {"People"}}, {"objectClass", {"top"}}});
    Add("ou=Equipment,o=Lucent",
        {{"ou", {"Equipment"}}, {"objectClass", {"top"}}});
    AddPerson("John Doe", {"+1 908 582 1000"}, "john@lucent.com");
    AddPerson("Jane Roe", {"+1 908 582 1001", "+1 908 582 1002"},
              "jane@lucent.com");
    AddPerson("Jim Poe", {"+1 908 582 2000"}, "");
    // Shares John's number: equality postings with two entries.
    AddPerson("Jack Low", {"+1 908 582 1000"}, "jack@lucent.com");
    // Messy spacing: normalizes to the same index key as Jane's first.
    AddPerson("Copy Cat", {"  +1   908 582 1001 "}, "");
    // A nested container with a person inside, so candidate sets span
    // tree depths and emission order is observable.
    Add("ou=Team A,ou=People,o=Lucent",
        {{"ou", {"Team A"}}, {"objectClass", {"top", "person"}}});
    Add("cn=Ann Lee,ou=Team A,ou=People,o=Lucent",
        {{"cn", {"Ann Lee"}},
         {"sn", {"Lee"}},
         {"objectClass", {"top", "person"}},
         {"telephoneNumber", {"+1 908 582 1003"}}});
    Add("cn=Laser Printer,ou=Equipment,o=Lucent",
        {{"cn", {"Laser Printer"}}, {"objectClass", {"top", "device"}}});
  }

  void Add(const char* dn,
           const std::vector<std::pair<std::string,
                                       std::vector<std::string>>>& attrs) {
    Entry entry(MustParse(dn));
    for (const auto& [name, values] : attrs) {
      entry.Set(name, values);
    }
    ASSERT_TRUE(backend_.Add(entry).ok()) << dn;
  }

  void AddPerson(const std::string& cn,
                 const std::vector<std::string>& phones,
                 const std::string& mail) {
    Entry entry(
        MustParse(("cn=" + cn + ",ou=People,o=Lucent").c_str()));
    entry.SetOne("cn", cn);
    entry.SetOne("sn", cn.substr(cn.rfind(' ') + 1));
    entry.AddObjectClass("top");
    entry.AddObjectClass("person");
    entry.Set("telephoneNumber", phones);
    if (!mail.empty()) entry.SetOne("mail", mail);
    ASSERT_TRUE(backend_.Add(entry).ok()) << cn;
  }

  StatusOr<SearchResult> Subtree(const Dn& base, const Filter& filter,
                                 size_t size_limit = 0) {
    SearchRequest request;
    request.base = base;
    request.scope = Scope::kSubtree;
    request.filter = filter;
    request.size_limit = size_limit;
    return backend_.Search(request);
  }

  Backend backend_;  // Schema-less; planner behaviour is schema-free.
};

TEST_F(QueryPlannerTest, PlannedSearchesMatchNaiveScanGoldenCorpus) {
  const std::vector<std::string> corpus = {
      // Indexed: equality, incl. case/spacing folding and shared values.
      "(telephoneNumber=+1 908 582 1000)",
      "(TELEPHONENUMBER=+1  908   582 1001)",
      "(cn=JOHN DOE)",
      "(objectClass=person)",
      "(objectClass=top)",
      // Indexed: substring with a literal prefix.
      "(telephoneNumber=+1 908 582 1*)",
      "(cn=j*)",
      "(cn=J*Doe)",
      "(cn=j?m*)",
      // Indexed: compositions.
      "(&(objectClass=person)(telephoneNumber=+1 908 582 1001))",
      "(&(cn=*)(telephoneNumber=+1 908 582 1000))",
      "(&(objectClass=person)(objectClass=top))",
      "(|(cn=John Doe)(cn=Jane Roe))",
      "(|(telephoneNumber=+1 908 582 1*)(cn=Ann Lee))",
      // Indexed, provably empty: absent attribute / absent value.
      "(pager=42)",
      "(cn=Nobody Here)",
      "(&(cn=John Doe)(cn=Jane Roe))",
      // Scan fallbacks: no indexable anchor.
      "(cn=*doe)",
      "(mail=*@lucent.com)",
      "(mail=*)",
      "(telephoneNumber>=+1 908 582 1000)",
      "(telephoneNumber<=+1 908 582 1001)",
      "(sn~=doe)",
      "(!(cn=John Doe))",
      "(|(cn=John Doe)(sn=*oe))",
      "(&(mail=*)(sn=*oe))",
  };
  const std::vector<Dn> bases = {Dn::Root(), MustParse("o=Lucent"),
                                 MustParse("ou=People,o=Lucent"),
                                 MustParse("ou=Team A,ou=People,o=Lucent")};
  for (const std::string& text : corpus) {
    Filter filter = MustParseFilter(text);
    for (const Dn& base : bases) {
      std::vector<Entry> expected = ReferenceScan(backend_, base, filter);
      auto result = Subtree(base, filter);
      ASSERT_TRUE(result.ok()) << text << " base=" << base.ToString();
      ASSERT_EQ(result->entries.size(), expected.size())
          << text << " base=" << base.ToString();
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(result->entries[i], expected[i])
            << text << " base=" << base.ToString() << " position " << i
            << ": got " << result->entries[i].dn().ToString()
            << ", want " << expected[i].dn().ToString();
      }
    }
  }
}

TEST_F(QueryPlannerTest, StatsDistinguishIndexedFromScanPlans) {
  Backend::ReadStats before = backend_.read_stats();
  ASSERT_TRUE(
      Subtree(Dn::Root(),
              MustParseFilter("(telephoneNumber=+1 908 582 1000)"))
          .ok());
  Backend::ReadStats after_indexed = backend_.read_stats();
  EXPECT_EQ(after_indexed.indexed_plans, before.indexed_plans + 1);
  EXPECT_EQ(after_indexed.scan_plans, before.scan_plans);
  EXPECT_EQ(after_indexed.candidates_examined,
            before.candidates_examined + 2);  // John + Jack share it.
  EXPECT_EQ(after_indexed.candidates_matched,
            before.candidates_matched + 2);

  ASSERT_TRUE(Subtree(Dn::Root(), MustParseFilter("(mail=*)")).ok());
  Backend::ReadStats after_scan = backend_.read_stats();
  EXPECT_EQ(after_scan.scan_plans, after_indexed.scan_plans + 1);
  EXPECT_EQ(after_scan.indexed_plans, after_indexed.indexed_plans);
}

TEST_F(QueryPlannerTest, PrefixPlanPrunesBeforeEvaluation) {
  // "+1 908 582 1*" covers the 100x/1003 keys but not 2000: the plan
  // examines only the five posted entries (Copy Cat is a candidate via
  // its normalized key but its raw value fails the glob re-check, so
  // planned results still equal the scan's).
  Backend::ReadStats before = backend_.read_stats();
  auto result = Subtree(MustParse("ou=People,o=Lucent"),
                        MustParseFilter("(telephoneNumber=+1 908 582 1*)"));
  ASSERT_TRUE(result.ok());
  Backend::ReadStats after = backend_.read_stats();
  EXPECT_EQ(after.indexed_plans, before.indexed_plans + 1);
  uint64_t examined = after.candidates_examined - before.candidates_examined;
  EXPECT_EQ(examined, 5u);
  EXPECT_LT(examined, backend_.Size());  // Pruned: not a full scan.
  EXPECT_EQ(result->entries.size(), 4u);  // John, Jane, Jack, Ann.
}

TEST_F(QueryPlannerTest, IndexedPathKeepsSizeLimitSemantics) {
  Filter shared = MustParseFilter("(telephoneNumber=+1 908 582 1000)");
  // Exactly as many matches as the limit: fine.
  auto exact = Subtree(Dn::Root(), shared, /*size_limit=*/2);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact->entries.size(), 2u);
  // One fewer: the third match trips the limit.
  auto over = Subtree(Dn::Root(), shared, /*size_limit=*/1);
  EXPECT_EQ(over.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(QueryPlannerTest, PlanFilterExposesCandidates) {
  Backend::SnapshotPtr snapshot = backend_.GetSnapshot();
  QueryPlan equality = PlanFilter(
      snapshot->index, Filter::Equality("cn", "John Doe"));
  EXPECT_TRUE(equality.indexed);
  ASSERT_EQ(equality.candidates.size(), 1u);
  EXPECT_EQ(equality.candidates[0].second.ToString(),
            "cn=John Doe,ou=People,o=Lucent");

  QueryPlan present = PlanFilter(snapshot->index, Filter::Present("cn"));
  EXPECT_FALSE(present.indexed);

  QueryPlan empty = PlanFilter(
      snapshot->index, Filter::Equality("roomNumber", "4E-432"));
  EXPECT_TRUE(empty.indexed);
  EXPECT_TRUE(empty.candidates.empty());
}

TEST(TreeOrderLessTest, AncestorsBeforeDescendantsSiblingsByRdn) {
  Dn root = Dn::Root();
  Dn lucent = *Dn::Parse("o=Lucent");
  Dn people = *Dn::Parse("ou=People,o=Lucent");
  Dn equipment = *Dn::Parse("ou=Equipment,o=Lucent");
  Dn john = *Dn::Parse("cn=John Doe,ou=People,o=Lucent");

  EXPECT_TRUE(TreeOrderLess(root, lucent));
  EXPECT_TRUE(TreeOrderLess(lucent, people));
  EXPECT_TRUE(TreeOrderLess(people, john));
  EXPECT_TRUE(TreeOrderLess(equipment, people));  // "equipment" < "people".
  EXPECT_TRUE(TreeOrderLess(equipment, john));
  EXPECT_FALSE(TreeOrderLess(john, people));
  EXPECT_FALSE(TreeOrderLess(people, people));
  // Case-insensitive: normalization drives the order.
  Dn shouty = *Dn::Parse("OU=PEOPLE,O=LUCENT");
  EXPECT_FALSE(TreeOrderLess(people, shouty));
  EXPECT_FALSE(TreeOrderLess(shouty, people));
}

}  // namespace
}  // namespace metacomm::ldap
