#include <gtest/gtest.h>

#include "lexpress/mapping.h"

namespace metacomm::lexpress {
namespace {

/// Paper §4.2: "Matching the pattern of input attributes allows
/// mappings to be resilient when faced with dirty data. Patterns allow
/// mappings to be refined incrementally with a list of special cases."
///
/// These tests write mappings the way the paper describes: a list of
/// guarded special cases, most specific first, over the messy data
/// real devices actually hold.

Mapping MustCompile(const std::string& source) {
  auto mappings = CompileMappings(source);
  EXPECT_TRUE(mappings.ok()) << mappings.status();
  return std::move((*mappings)[0]);
}

/// Telephone numbers arrive in every format the field offices ever
/// used; the mapping normalizes them into an extension with a chain
/// of pattern guards refined case by case.
TEST(DirtyDataTest, PhoneNumberSpecialCases) {
  Mapping mapping = MustCompile(R"(
mapping DirtyPhones from hr to pbx {
  # Special case 1: full international format "+1 908 582 xxxx".
  map substr(digits(phone), -4, 4) -> Extension
      when matches(phone, "+1 908 582 *");
  # Special case 2: office-local "x1234" style.
  map digits(phone) -> Extension when matches(phone, "x????");
  # Special case 3: bare 4-digit extension.
  map phone -> Extension when matches(phone, "????") and
      present(phone) and phone != "none";
  # Fallback: last four digits of whatever it is, if it has >= 4.
  map substr(digits(phone), -4, 4) -> Extension
      when matches(digits(phone), "????*");
}
)");

  struct Case {
    const char* in;
    const char* expect;  // "" = no extension derived.
  } cases[] = {
      {"+1 908 582 9000", "9000"},
      {"x4567", "4567"},
      {"4567", "4567"},
      {"(908) 582-1234", "1234"},
      {"911", ""},       // Too short for any rule.
      {"none", ""},      // Explicitly dirty marker.
  };
  for (const Case& c : cases) {
    Record record("hr");
    record.SetOne("phone", c.in);
    auto mapped = mapping.MapRecord(record);
    ASSERT_TRUE(mapped.ok()) << c.in;
    EXPECT_EQ(mapped->GetFirst("Extension"), c.expect) << c.in;
  }
}

/// Names arrive as "Last, First", "First Last", or a bare login; the
/// mapping peels cases off one at a time.
TEST(DirtyDataTest, NameFormatSpecialCases) {
  Mapping mapping = MustCompile(R"(
mapping DirtyNames from hr to ldap {
  # "Doe, John" -> cn "John Doe".
  map concat(trim(split(raw, ",", 1)), " ", trim(split(raw, ",", 0)))
      -> cn when contains(raw, ",");
  map trim(split(raw, ",", 0)) -> sn when contains(raw, ",");
  # "John Doe" -> as-is.
  map normalize(raw) -> cn when contains(raw, " ");
  map surname(raw) -> sn when contains(raw, " ");
  # Bare login: usable as cn, no surname derivable.
  map raw -> cn;
}
)");

  struct Case {
    const char* in;
    const char* cn;
    const char* sn;
  } cases[] = {
      {"Doe, John", "John Doe", "Doe"},
      {"John Doe", "John Doe", "Doe"},
      {"John  Q  Doe", "John Q Doe", "Doe"},
      {"jdoe", "jdoe", ""},
  };
  for (const Case& c : cases) {
    Record record("hr");
    record.SetOne("raw", c.in);
    auto mapped = mapping.MapRecord(record);
    ASSERT_TRUE(mapped.ok()) << c.in;
    EXPECT_EQ(mapped->GetFirst("cn"), c.cn) << c.in;
    EXPECT_EQ(mapped->GetFirst("sn"), c.sn) << c.in;
  }
}

/// Incremental refinement: adding a special case BEFORE the general
/// rule changes only the targeted inputs — the paper's workflow for
/// hardening a mapping in production.
TEST(DirtyDataTest, RefinementOnlyAffectsTargetedInputs) {
  const char* general =
      "mapping M from a to b { map upper(x) -> out; }";
  const char* refined = R"(
mapping M from a to b {
  map "SPECIAL" -> out when x == "weird legacy value";
  map upper(x) -> out;
}
)";
  Mapping before = MustCompile(general);
  Mapping after = MustCompile(refined);

  Record normal("a");
  normal.SetOne("x", "ok");
  Record weird("a");
  weird.SetOne("x", "weird legacy value");

  auto normal_before = before.MapRecord(normal);
  auto normal_after = after.MapRecord(normal);
  ASSERT_TRUE(normal_before.ok() && normal_after.ok());
  EXPECT_TRUE(*normal_before == *normal_after);  // Untouched.

  auto weird_after = after.MapRecord(weird);
  ASSERT_TRUE(weird_after.ok());
  EXPECT_EQ(weird_after->GetFirst("out"), "SPECIAL");
}

/// Table translation with a default soaks up unexpected codes instead
/// of failing the whole record (§4.2 tables).
TEST(DirtyDataTest, TableDefaultAbsorbsUnknownCodes) {
  Mapping mapping = MustCompile(R"(
mapping Codes from dev to ldap {
  table Dept {
    "1" -> "Research";
    "2" -> "Marketing";
    default -> "Unassigned";
  }
  map first(lookup(Dept, code)) -> departmentNumber;
}
)");
  Record known("dev");
  known.SetOne("code", "2");
  Record junk("dev");
  junk.SetOne("code", "!!corrupt!!");
  auto known_mapped = mapping.MapRecord(known);
  auto junk_mapped = mapping.MapRecord(junk);
  ASSERT_TRUE(known_mapped.ok() && junk_mapped.ok());
  EXPECT_EQ(known_mapped->GetFirst("departmentNumber"), "Marketing");
  EXPECT_EQ(junk_mapped->GetFirst("departmentNumber"), "Unassigned");
}

/// Multi-valued dirty input: some values salvageable, some not — the
/// elementwise builtins keep the good ones.
TEST(DirtyDataTest, MultiValuedPartialSalvage) {
  Mapping mapping = MustCompile(R"(
mapping Multi from a to b {
  map split(emails, ";", 0) -> primaryMail when present(emails);
}
)");
  Record record("a");
  record.Set("emails", {"jd@lucent.com;john@home.net", "solo@x.org"});
  auto mapped = mapping.MapRecord(record);
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(mapped->Get("primaryMail"),
            (Value{"jd@lucent.com", "solo@x.org"}));
}

}  // namespace
}  // namespace metacomm::lexpress
