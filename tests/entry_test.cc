#include "ldap/entry.h"

#include <gtest/gtest.h>

namespace metacomm::ldap {
namespace {

TEST(AttributeTest, SetSemantics) {
  Attribute attr("mail");
  EXPECT_TRUE(attr.AddValue("jd@lucent.com"));
  EXPECT_FALSE(attr.AddValue("JD@LUCENT.COM"));  // Case-insensitive dup.
  EXPECT_EQ(attr.size(), 1u);
  EXPECT_TRUE(attr.HasValue("Jd@Lucent.Com"));
  EXPECT_TRUE(attr.RemoveValue("JD@lucent.com"));
  EXPECT_FALSE(attr.RemoveValue("jd@lucent.com"));
  EXPECT_TRUE(attr.empty());
}

TEST(AttributeTest, FirstValueAndEquality) {
  Attribute a("cn", {"John", "Johnny"});
  EXPECT_EQ(a.FirstValue(), "John");
  Attribute b("CN", {"johnny", "john"});
  EXPECT_TRUE(a == b);  // Name and value sets match, order ignored.
  Attribute c("cn", {"John"});
  EXPECT_FALSE(a == c);
  Attribute empty("cn");
  EXPECT_EQ(empty.FirstValue(), "");
}

TEST(AttributeTest, ConstructorDeduplicates) {
  Attribute attr("cn", {"A", "a", "B"});
  EXPECT_EQ(attr.size(), 2u);
}

TEST(EntryTest, BasicAccessors) {
  Entry entry(Dn::Root().Child(Rdn("cn", "John Doe")));
  EXPECT_FALSE(entry.Has("cn"));
  entry.SetOne("cn", "John Doe");
  EXPECT_TRUE(entry.Has("cn"));
  EXPECT_TRUE(entry.Has("CN"));  // Case-insensitive names.
  EXPECT_EQ(entry.GetFirst("cN"), "John Doe");
  EXPECT_EQ(entry.GetAll("cn").size(), 1u);
  EXPECT_EQ(entry.GetFirst("missing"), "");
  EXPECT_TRUE(entry.GetAll("missing").empty());
}

TEST(EntryTest, SetEmptyRemoves) {
  Entry entry;
  entry.SetOne("roomNumber", "2C-401");
  entry.Set("roomNumber", {});
  EXPECT_FALSE(entry.Has("roomNumber"));
}

TEST(EntryTest, AddRemoveValues) {
  Entry entry;
  EXPECT_TRUE(entry.AddValue("telephoneNumber", "+1 908 582 9000"));
  EXPECT_TRUE(entry.AddValue("telephoneNumber", "+1 908 582 9001"));
  EXPECT_FALSE(entry.AddValue("telephoneNumber", "+1 908 582 9000"));
  EXPECT_EQ(entry.GetAll("telephoneNumber").size(), 2u);
  EXPECT_TRUE(entry.RemoveValue("telephoneNumber", "+1 908 582 9000"));
  EXPECT_FALSE(entry.RemoveValue("telephoneNumber", "nope"));
  EXPECT_TRUE(entry.RemoveValue("telephoneNumber", "+1 908 582 9001"));
  // Attribute vanishes with its last value.
  EXPECT_FALSE(entry.Has("telephoneNumber"));
  EXPECT_FALSE(entry.RemoveValue("telephoneNumber", "x"));
}

TEST(EntryTest, ObjectClassHelpers) {
  Entry entry;
  EXPECT_FALSE(entry.HasObjectClass("person"));
  entry.AddObjectClass("top");
  entry.AddObjectClass("person");
  entry.AddObjectClass("person");  // Dedup.
  EXPECT_TRUE(entry.HasObjectClass("PERSON"));
  EXPECT_EQ(entry.GetAll("objectClass").size(), 2u);
}

TEST(EntryTest, EqualityIsDeepAndCaseInsensitive) {
  Entry a(Dn::Root().Child(Rdn("cn", "X")));
  a.SetOne("cn", "X");
  a.Set("mail", {"a@x", "b@x"});
  Entry b(Dn::Root().Child(Rdn("CN", "x")));
  b.SetOne("CN", "X");
  b.Set("MAIL", {"B@X", "A@X"});
  EXPECT_TRUE(a == b);
  b.SetOne("sn", "S");
  EXPECT_FALSE(a == b);
}

TEST(EntryTest, ToStringIsLdifLike) {
  Entry entry(Dn::Root().Child(Rdn("cn", "X")));
  entry.SetOne("cn", "X");
  std::string text = entry.ToString();
  EXPECT_NE(text.find("dn: cn=X"), std::string::npos);
  EXPECT_NE(text.find("cn: X"), std::string::npos);
}

// Paper §5.3: LDAP sets hold atomic values only — related fields
// cannot be correlated within one entry, so MetaComm gives a person
// one entry PER LOCATION instead of set-valued attributes. This test
// documents that modeling.
TEST(EntryTest, MultiLocationPersonsAreSeparateEntries) {
  Entry murray_hill(*Dn::Parse("cn=Jill Lu+l=Murray Hill,o=Lucent"));
  murray_hill.SetOne("cn", "Jill Lu");
  murray_hill.SetOne("l", "Murray Hill");
  murray_hill.SetOne("telephoneNumber", "+1 908 582 9000");

  Entry westminster(*Dn::Parse("cn=Jill Lu+l=Westminster,o=Lucent"));
  westminster.SetOne("cn", "Jill Lu");
  westminster.SetOne("l", "Westminster");
  westminster.SetOne("telephoneNumber", "+1 303 538 1000");

  // Distinct entries under the same parent thanks to multi-valued
  // RDNs; each correlates ONE phone with ONE location.
  EXPECT_FALSE(murray_hill.dn() == westminster.dn());
  EXPECT_EQ(murray_hill.dn().Parent(), westminster.dn().Parent());
}

}  // namespace
}  // namespace metacomm::ldap
