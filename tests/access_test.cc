#include "ldap/access.h"

#include <gtest/gtest.h>

#include "ldap/client.h"
#include "ldap/server.h"

namespace metacomm::ldap {
namespace {

Dn MustParse(const char* text) {
  auto dn = Dn::Parse(text);
  EXPECT_TRUE(dn.ok()) << text;
  return *dn;
}

TEST(AccessControlTest, DefaultDeniesEverything) {
  AccessControl acl;
  EXPECT_EQ(acl.LevelFor("cn=admin,o=Lucent", MustParse("o=Lucent")),
            AccessLevel::kNone);
  EXPECT_FALSE(acl.CanRead("", MustParse("o=Lucent")));
}

TEST(AccessControlTest, FirstMatchingRuleWins) {
  AccessControl acl;
  // Deny-all on a sensitive subtree, then read for everyone under the
  // suffix — rule order decides.
  acl.AddRule(AccessControl::Grant(AccessLevel::kNone,
                                   AccessSubject::kAnyone,
                                   MustParse("ou=Secret,o=Lucent")));
  acl.AddRule(AccessControl::Grant(AccessLevel::kRead,
                                   AccessSubject::kAnyone,
                                   MustParse("o=Lucent")));
  EXPECT_FALSE(
      acl.CanRead("", MustParse("cn=X,ou=Secret,o=Lucent")));
  EXPECT_TRUE(acl.CanRead("", MustParse("cn=X,ou=People,o=Lucent")));
}

TEST(AccessControlTest, SubjectKinds) {
  AccessControl acl;
  acl.AddRule(AccessControl::Grant(
      AccessLevel::kWrite, AccessSubject::kDn, MustParse("o=Lucent"),
      MustParse("cn=admin,o=Lucent")));
  acl.AddRule(AccessControl::Grant(AccessLevel::kWrite,
                                   AccessSubject::kSelf,
                                   MustParse("o=Lucent")));
  acl.AddRule(AccessControl::Grant(
      AccessLevel::kRead, AccessSubject::kSubtree, MustParse("o=Lucent"),
      MustParse("ou=People,o=Lucent")));
  acl.AddRule(AccessControl::Grant(AccessLevel::kCompare,
                                   AccessSubject::kAuthenticated,
                                   MustParse("o=Lucent")));

  // Admin DN gets write anywhere under the suffix.
  EXPECT_TRUE(acl.CanWrite("cn=admin,o=Lucent",
                           MustParse("cn=X,ou=People,o=Lucent")));
  // Self: a person may write their own entry...
  EXPECT_TRUE(acl.CanWrite("cn=X,ou=People,o=Lucent",
                           MustParse("cn=X,ou=People,o=Lucent")));
  // ...but not someone else's (falls through to subtree-read).
  EXPECT_FALSE(acl.CanWrite("cn=X,ou=People,o=Lucent",
                            MustParse("cn=Y,ou=People,o=Lucent")));
  EXPECT_TRUE(acl.CanRead("cn=X,ou=People,o=Lucent",
                          MustParse("cn=Y,ou=People,o=Lucent")));
  // Any other authenticated principal only compares.
  EXPECT_FALSE(acl.CanRead("cn=app,ou=Services,o=Lucent",
                           MustParse("cn=Y,ou=People,o=Lucent")));
  EXPECT_TRUE(acl.CanCompare("cn=app,ou=Services,o=Lucent",
                             MustParse("cn=Y,ou=People,o=Lucent")));
  // Anonymous matches nothing here.
  EXPECT_EQ(acl.LevelFor("", MustParse("cn=Y,ou=People,o=Lucent")),
            AccessLevel::kNone);
}

TEST(AccessControlTest, RootTargetCoversEverything) {
  AccessControl acl;
  acl.AddRule(AccessControl::Grant(AccessLevel::kRead,
                                   AccessSubject::kAnyone, Dn::Root()));
  EXPECT_TRUE(acl.CanRead("", MustParse("cn=deep,ou=a,o=b")));
}

class AclServerTest : public ::testing::Test {
 protected:
  AclServerTest() {
    AccessControl acl;
    acl.AddRule(AccessControl::Grant(
        AccessLevel::kWrite, AccessSubject::kDn, MustParse("o=Lucent"),
        MustParse("cn=admin,o=Lucent")));
    acl.AddRule(AccessControl::Grant(AccessLevel::kWrite,
                                     AccessSubject::kSelf,
                                     MustParse("ou=People,o=Lucent")));
    acl.AddRule(AccessControl::Grant(
        AccessLevel::kRead, AccessSubject::kAuthenticated,
        MustParse("ou=People,o=Lucent")));
    // cn=errors is admin-only (already covered: no rule for others).
    ServerConfig config;
    config.acl = std::move(acl);
    server_ = std::make_unique<LdapServer>(Schema::Standard(), config);

    auto bootstrap = [this](const char* dn, const char* cls,
                            const char* attr, const char* value) {
      Entry entry(MustParse(dn));
      entry.AddObjectClass("top");
      entry.AddObjectClass(cls);
      entry.SetOne(attr, value);
      ASSERT_TRUE(server_->backend().Add(entry).ok());
    };
    bootstrap("o=Lucent", "organization", "o", "Lucent");
    bootstrap("ou=People,o=Lucent", "organizationalUnit", "ou", "People");

    Entry admin(MustParse("cn=admin,o=Lucent"));
    admin.Set("objectClass", {"top", "person"});
    admin.SetOne("cn", "admin");
    admin.SetOne("sn", "admin");
    EXPECT_TRUE(server_->backend().Add(admin).ok());
    Entry person(MustParse("cn=John Doe,ou=People,o=Lucent"));
    person.Set("objectClass", {"top", "person"});
    person.SetOne("cn", "John Doe");
    person.SetOne("sn", "Doe");
    EXPECT_TRUE(server_->backend().Add(person).ok());

    server_->AddUser(MustParse("cn=admin,o=Lucent"), "secret");
    server_->AddUser(MustParse("cn=John Doe,ou=People,o=Lucent"), "pw");
  }

  std::unique_ptr<LdapServer> server_;
};

TEST_F(AclServerTest, AnonymousSeesNothing) {
  Client anon(server_.get());
  auto results = anon.Search("o=Lucent", "(objectClass=person)");
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());
  EXPECT_EQ(anon.Replace("cn=John Doe,ou=People,o=Lucent", "sn", "X")
                .code(),
            StatusCode::kPermissionDenied);
}

TEST_F(AclServerTest, AuthenticatedReadsPeopleOnly) {
  Client user(server_.get());
  ASSERT_TRUE(user.Bind("cn=John Doe,ou=People,o=Lucent", "pw").ok());
  auto results = user.Search("o=Lucent", "(objectClass=person)");
  ASSERT_TRUE(results.ok());
  // Sees the person entry but not cn=admin (outside ou=People).
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0].GetFirst("cn"), "John Doe");
}

TEST_F(AclServerTest, SelfWriteAllowedOthersDenied) {
  Client user(server_.get());
  ASSERT_TRUE(user.Bind("cn=John Doe,ou=People,o=Lucent", "pw").ok());
  EXPECT_TRUE(
      user.Replace("cn=John Doe,ou=People,o=Lucent", "sn", "Doe-2").ok());
  EXPECT_EQ(user.Add("cn=Other,ou=People,o=Lucent",
                     {{"objectClass", "person"},
                      {"cn", "Other"},
                      {"sn", "O"}})
                .code(),
            StatusCode::kPermissionDenied);
}

TEST_F(AclServerTest, AdminWritesAnywhere) {
  Client admin(server_.get());
  ASSERT_TRUE(admin.Bind("cn=admin,o=Lucent", "secret").ok());
  EXPECT_TRUE(admin
                  .Add("cn=New Person,ou=People,o=Lucent",
                       {{"objectClass", "top"},
                        {"objectClass", "person"},
                        {"cn", "New Person"},
                        {"sn", "P"}})
                  .ok());
  EXPECT_TRUE(
      admin.Delete("cn=New Person,ou=People,o=Lucent").ok());
}

TEST_F(AclServerTest, InternalOpsBypassAcl) {
  // The Update Manager's writes (OpContext::internal) ignore ACLs.
  OpContext internal;
  internal.internal = true;
  Entry entry(MustParse("cn=By UM,ou=People,o=Lucent"));
  entry.Set("objectClass", {"top", "person"});
  entry.SetOne("cn", "By UM");
  entry.SetOne("sn", "UM");
  EXPECT_TRUE(server_->Add(internal, AddRequest{entry}).ok());
}

}  // namespace
}  // namespace metacomm::ldap
