// Differential test for the lexpress execution fast path.
//
// The slot-resolved, allocation-free pipeline (Mapping::MapRecord /
// Translate on an instance Vm) must be byte-identical to the reference
// copying interpreter (MapRecordReference / TranslateReference) on
// every input. Seeded random mappings and records sweep the full
// builtin surface — tables, guards, alternate rules, identity copies,
// partitions, multi-valued and missing attributes, odd-case names —
// and every output is compared via ToString so ordering and case
// differences cannot hide.

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "lexpress/closure.h"
#include "lexpress/compiler.h"
#include "lexpress/mapping.h"

namespace metacomm::lexpress {
namespace {

constexpr int kSourceAttrs = 8;
constexpr int kTargetAttrs = 6;  // Fewer targets than rules: alternates.

std::string Literal(Random& rng) {
  static const std::vector<std::string> kPool = {
      "",           "John Doe",     "  padded  ",  "+1 908 582 9000",
      "a-b-c",      "9000",         "TRUE",        "x",
      "Mixed Case", "one two three"};
  return kPool[rng.Uniform(kPool.size())];
}

/// A source attribute reference, sometimes in scrambled case — the
/// fast path resolves names at compile time, the reference path at
/// execution time, and both must fold case identically.
std::string AttrRef(Random& rng) {
  std::string name = "a" + std::to_string(rng.Uniform(kSourceAttrs));
  if (rng.Bernoulli(0.3)) name[0] = 'A';
  return name;
}

std::string ValueExpr(Random& rng, int depth);

std::string GuardExpr(Random& rng, int depth) {
  if (depth <= 0) {
    return rng.Bernoulli(0.5) ? "present(" + AttrRef(rng) + ")"
                              : "absent(" + AttrRef(rng) + ")";
  }
  switch (rng.Uniform(10)) {
    case 0:
      return "and(" + GuardExpr(rng, depth - 1) + ", " +
             GuardExpr(rng, depth - 1) + ")";
    case 1:
      return "or(" + GuardExpr(rng, depth - 1) + ", " +
             GuardExpr(rng, depth - 1) + ")";
    case 2:
      return "not(" + GuardExpr(rng, depth - 1) + ")";
    case 3:
      return "eq(" + ValueExpr(rng, depth - 1) + ", \"" + Literal(rng) +
             "\")";
    case 4:
      return "ne(" + AttrRef(rng) + ", \"" + Literal(rng) + "\")";
    case 5:
      return "prefix(" + AttrRef(rng) + ", \"" + Literal(rng) + "\")";
    case 6:
      return "suffix(" + AttrRef(rng) + ", \"" + Literal(rng) + "\")";
    case 7:
      return "contains(" + AttrRef(rng) + ", \"" + Literal(rng) + "\")";
    case 8:
      return "matches(" + AttrRef(rng) + ", \"*9*\")";
    default:
      return "present(" + AttrRef(rng) + ")";
  }
}

std::string ValueExpr(Random& rng, int depth) {
  if (depth <= 0) {
    return rng.Bernoulli(0.7) ? AttrRef(rng) : "\"" + Literal(rng) + "\"";
  }
  switch (rng.Uniform(16)) {
    case 0:
      return "upper(" + ValueExpr(rng, depth - 1) + ")";
    case 1:
      return "lower(" + ValueExpr(rng, depth - 1) + ")";
    case 2:
      return "trim(" + ValueExpr(rng, depth - 1) + ")";
    case 3:
      return "normalize(" + ValueExpr(rng, depth - 1) + ")";
    case 4:
      return "digits(" + ValueExpr(rng, depth - 1) + ")";
    case 5:
      return rng.Bernoulli(0.5)
                 ? "surname(" + ValueExpr(rng, depth - 1) + ")"
                 : "givenname(" + ValueExpr(rng, depth - 1) + ")";
    case 6:
      return "concat(" + ValueExpr(rng, depth - 1) + ", \"-\", " +
             ValueExpr(rng, depth - 1) + ")";
    case 7:
      return "format(\"<%s|%s>\", " + ValueExpr(rng, depth - 1) + ", " +
             ValueExpr(rng, depth - 1) + ")";
    case 8:
      return "substr(" + ValueExpr(rng, depth - 1) + ", \"" +
             std::to_string(static_cast<int>(rng.Uniform(7)) - 3) + "\", \"" +
             std::to_string(rng.Uniform(5)) + "\")";
    case 9:
      return "replace(" + ValueExpr(rng, depth - 1) + ", \"o\", \"0\")";
    case 10:
      return "split(" + ValueExpr(rng, depth - 1) + ", \" \", \"" +
             std::to_string(rng.Uniform(3)) + "\")";
    case 11:
      return rng.Bernoulli(0.5) ? "first(" + ValueExpr(rng, depth - 1) + ")"
                                : "last(" + ValueExpr(rng, depth - 1) + ")";
    case 12:
      return rng.Bernoulli(0.5)
                 ? "join(" + ValueExpr(rng, depth - 1) + ", \",\")"
                 : "count(" + ValueExpr(rng, depth - 1) + ")";
    case 13:
      return "default(" + ValueExpr(rng, depth - 1) + ", \"" + Literal(rng) +
             "\")";
    case 14:
      return "ifelse(" + GuardExpr(rng, depth - 1) + ", " +
             ValueExpr(rng, depth - 1) + ", " + ValueExpr(rng, depth - 1) +
             ")";
    default:
      return "lookup(T, " + ValueExpr(rng, depth - 1) + ")";
  }
}

std::string RandomMappingSource(Random& rng) {
  std::string out = "mapping Rand from src to dst {\n";
  out +=
      "  table T { \"9000\" -> \"ext-a\"; \"a-b-c\" -> \"list\"; "
      "\"John Doe\" -> \"person\"; default -> \"other\"; }\n";
  if (rng.Bernoulli(0.3)) {
    out += "  partition when " + GuardExpr(rng, 1) + ";\n";
  }
  out += "  key a0 -> b0;\n";
  int rules = 4 + static_cast<int>(rng.Uniform(8));
  for (int i = 0; i < rules; ++i) {
    std::string target = "b" + std::to_string(rng.Uniform(kTargetAttrs));
    std::string body = rng.Bernoulli(0.25)
                           ? AttrRef(rng)  // Identity: the direct-slot path.
                           : ValueExpr(rng, 1 + rng.Uniform(2));
    out += "  map " + body + " -> " + target;
    if (rng.Bernoulli(0.4)) out += " when " + GuardExpr(rng, 1);
    out += ";\n";
  }
  out += "}\n";
  return out;
}

Record RandomRecord(Random& rng) {
  Record record("src");
  for (int i = 0; i < kSourceAttrs; ++i) {
    if (!rng.Bernoulli(0.7)) continue;  // Missing attributes.
    std::string name = "a" + std::to_string(i);
    if (rng.Bernoulli(0.3)) name[0] = 'A';  // Odd-case names.
    Value value;
    int values = 1 + static_cast<int>(rng.Uniform(3));
    for (int v = 0; v < values; ++v) {
      std::string s = Literal(rng);
      if (!s.empty() || rng.Bernoulli(0.5)) value.push_back(std::move(s));
    }
    if (!value.empty()) record.Set(name, std::move(value));
  }
  if (rng.Bernoulli(0.3)) record.SetOne("unmapped", "ignored");
  return record;
}

/// Mutates `record` the way a Modify would: change, add, or drop a few
/// attributes (sometimes none — the all-clean dirty path).
Record Mutate(Random& rng, const Record& record) {
  Record out = record;
  int edits = static_cast<int>(rng.Uniform(3));
  for (int e = 0; e < edits; ++e) {
    std::string name = "a" + std::to_string(rng.Uniform(kSourceAttrs));
    switch (rng.Uniform(3)) {
      case 0:
        out.SetOne(name, Literal(rng) + "!");
        break;
      case 1:
        out.Remove(name);
        break;
      default:
        out.SetOne(name, Literal(rng));
        break;
    }
  }
  return out;
}

std::string DescriptorString(
    const StatusOr<std::optional<UpdateDescriptor>>& result) {
  if (!result.ok()) return "error: " + result.status().ToString();
  if (!result->has_value()) return "skip";
  return (*result)->ToString();
}

TEST(LexpressExecDifferentialTest, MapRecordMatchesReference) {
  Vm vm;  // Reused across every mapping and record: scratch must reset.
  for (uint64_t seed = 0; seed < 150; ++seed) {
    Random rng(seed);
    auto mappings = CompileMappings(RandomMappingSource(rng));
    ASSERT_TRUE(mappings.ok()) << mappings.status().ToString();
    const Mapping& mapping = (*mappings)[0];
    for (int r = 0; r < 4; ++r) {
      Record record = RandomRecord(rng);
      auto fast = mapping.MapRecord(record, &vm);
      auto reference = mapping.MapRecordReference(record);
      ASSERT_EQ(fast.ok(), reference.ok()) << "seed " << seed;
      if (!fast.ok()) continue;
      EXPECT_EQ(fast->ToString(), reference->ToString())
          << "seed " << seed << " record " << record.ToString();
    }
  }
}

TEST(LexpressExecDifferentialTest, TranslateMatchesReference) {
  Vm vm;
  for (uint64_t seed = 0; seed < 150; ++seed) {
    Random rng(seed ^ 0xfeedULL);
    auto mappings = CompileMappings(RandomMappingSource(rng));
    ASSERT_TRUE(mappings.ok()) << mappings.status().ToString();
    const Mapping& mapping = (*mappings)[0];
    for (int r = 0; r < 3; ++r) {
      UpdateDescriptor update;
      update.schema = "src";
      update.source = "test";
      switch (rng.Uniform(3)) {
        case 0:
          update.op = DescriptorOp::kAdd;
          update.new_record = RandomRecord(rng);
          break;
        case 1:
          update.op = DescriptorOp::kDelete;
          update.old_record = RandomRecord(rng);
          break;
        default:
          update.op = DescriptorOp::kModify;
          update.old_record = RandomRecord(rng);
          update.new_record = Mutate(rng, update.old_record);
          break;
      }
      auto fast = mapping.Translate(update, &vm);
      auto reference = mapping.TranslateReference(update);
      EXPECT_EQ(DescriptorString(fast), DescriptorString(reference))
          << "seed " << seed << " update " << update.ToString();
    }
  }
}

// A modify that changes nothing must translate identically too — the
// dirty set is empty and every rule group is carried over.
TEST(LexpressExecDifferentialTest, NoOpModifyMatchesReference) {
  Vm vm;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    Random rng(seed ^ 0xabcULL);
    auto mappings = CompileMappings(RandomMappingSource(rng));
    ASSERT_TRUE(mappings.ok()) << mappings.status().ToString();
    UpdateDescriptor update;
    update.op = DescriptorOp::kModify;
    update.schema = "src";
    update.old_record = RandomRecord(rng);
    update.new_record = update.old_record;
    auto fast = (*mappings)[0].Translate(update, &vm);
    auto reference = (*mappings)[0].TranslateReference(update);
    EXPECT_EQ(DescriptorString(fast), DescriptorString(reference))
        << "seed " << seed;
  }
}

// Closure propagation with dirty-group selection must land on the same
// fixpoint a full remap of every hop produces: chain src -> mid -> dst,
// seed consistent base images, change the head, and compare each
// derived image against a from-scratch reference remap.
TEST(LexpressExecDifferentialTest, ClosureMatchesFullRemap) {
  for (uint64_t seed = 0; seed < 60; ++seed) {
    Random rng(seed ^ 0x50fULL);
    const std::string table =
        "  table T { \"9000\" -> \"ext-a\"; default -> \"other\"; }\n";
    std::string source = "mapping hop1 from src to mid {\n" + table;
    int rules = 3 + static_cast<int>(rng.Uniform(4));
    for (int i = 0; i < rules; ++i) {
      source += "  map " + ValueExpr(rng, 1) + " -> m" +
                std::to_string(rng.Uniform(4)) + ";\n";
    }
    source += "}\nmapping hop2 from mid to dst {\n" + table;
    for (int i = 0; i < 3; ++i) {
      std::string m = "m" + std::to_string(rng.Uniform(4));
      source += "  map " + (rng.Bernoulli(0.5) ? m : "upper(" + m + ")") +
                " -> d" + std::to_string(i) + ";\n";
    }
    source += "}\n";
    MappingSet set;
    ASSERT_TRUE(set.AddSource(source).ok()) << source;
    const Mapping& hop1 = set.mappings()[0];
    const Mapping& hop2 = set.mappings()[1];

    Record base_src = RandomRecord(rng);
    auto base_mid = hop1.MapRecordReference(base_src);
    ASSERT_TRUE(base_mid.ok());
    auto base_dst = hop2.MapRecordReference(*base_mid);
    ASSERT_TRUE(base_dst.ok());
    std::map<std::string, Record, CaseInsensitiveLess> base;
    base.emplace("src", base_src);
    base.emplace("mid", *base_mid);
    base.emplace("dst", *base_dst);

    Record updated = Mutate(rng, base_src);
    auto closure = set.Propagate(base, "src", updated, {});
    ASSERT_TRUE(closure.ok()) << closure.status().ToString();

    auto want_mid = hop1.MapRecordReference(updated);
    ASSERT_TRUE(want_mid.ok());
    auto want_dst = hop2.MapRecordReference(*want_mid);
    ASSERT_TRUE(want_dst.ok());
    EXPECT_EQ(closure->records.at("mid").ToString(), want_mid->ToString())
        << "seed " << seed;
    EXPECT_EQ(closure->records.at("dst").ToString(), want_dst->ToString())
        << "seed " << seed;
  }
}

// One compiled Mapping shared across threads, one Vm per thread: the
// supported concurrency model (mappings are immutable after Compile).
// Run under TSan to prove the fast path shares no mutable state.
TEST(LexpressExecThreadedTest, SharedMappingPerThreadVm) {
  Random setup(42);
  auto mappings = CompileMappings(RandomMappingSource(setup));
  ASSERT_TRUE(mappings.ok()) << mappings.status().ToString();
  const Mapping& mapping = (*mappings)[0];

  std::vector<std::thread> threads;
  std::vector<int> mismatches(4, 0);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t, &mapping, &mismatches] {
      Vm vm;
      Random rng(1000 + static_cast<uint64_t>(t));
      for (int i = 0; i < 50; ++i) {
        Record record = RandomRecord(rng);
        auto fast = mapping.MapRecord(record, &vm);
        auto reference = mapping.MapRecordReference(record);
        if (!fast.ok() || !reference.ok() ||
            fast->ToString() != reference->ToString()) {
          ++mismatches[t];
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches, std::vector<int>(4, 0));
}

// --- Corrupt-program hardening -------------------------------------
//
// Programs normally come out of the compiler, but both interpreters
// must reject malformed bytecode with Status::Internal instead of
// reading out of bounds.

Program SingleInstruction(OpCode op, uint32_t a, uint32_t b = 0) {
  Program program;
  program.code.push_back(Instruction{op, a, b});
  return program;
}

TEST(LexpressVmBoundsTest, BadConstantIndex) {
  Program program = SingleInstruction(OpCode::kPushConst, 5);
  auto reference = Vm::ExecuteReference(program, {}, Record("src"));
  ASSERT_FALSE(reference.ok());
  EXPECT_EQ(reference.status().code(), StatusCode::kInternal);

  SlotMap slots;
  ResolveSlots(&slots, &program);
  RecordView view;
  view.Reset(Record("src"), slots);
  Vm vm;
  auto fast = vm.Execute(program, {}, view);
  ASSERT_FALSE(fast.ok());
  EXPECT_EQ(fast.status().code(), StatusCode::kInternal);
}

TEST(LexpressVmBoundsTest, BadAttributeIndex) {
  // kLoadAttr whose operand exceeds attr_names/attr_slots.
  Program program = SingleInstruction(OpCode::kLoadAttr, 3);
  auto reference = Vm::ExecuteReference(program, {}, Record("src"));
  ASSERT_FALSE(reference.ok());
  EXPECT_EQ(reference.status().code(), StatusCode::kInternal);

  SlotMap slots;
  ResolveSlots(&slots, &program);
  RecordView view;
  view.Reset(Record("src"), slots);
  Vm vm;
  auto fast = vm.Execute(program, {}, view);
  ASSERT_FALSE(fast.ok());
  EXPECT_EQ(fast.status().code(), StatusCode::kInternal);
}

TEST(LexpressVmBoundsTest, BadAttributeSlot) {
  // Slot-resolved program whose recorded slot exceeds the view built
  // for it (a program run against the wrong mapping's view).
  Program program;
  program.code.push_back(Instruction{OpCode::kLoadAttr, 0, 0});
  program.attr_names.push_back("a0");
  program.attr_slots.push_back(7);  // No SlotMap ever issued slot 7.
  RecordView view;
  view.Reset(Record("src"), SlotMap());
  Vm vm;
  auto fast = vm.Execute(program, {}, view);
  ASSERT_FALSE(fast.ok());
  EXPECT_EQ(fast.status().code(), StatusCode::kInternal);
}

TEST(LexpressVmBoundsTest, StackUnderflowOnCall) {
  Program program = SingleInstruction(
      OpCode::kCall, static_cast<uint32_t>(Builtin::kConcat), 2);
  auto reference = Vm::ExecuteReference(program, {}, Record("src"));
  ASSERT_FALSE(reference.ok());
  EXPECT_EQ(reference.status().code(), StatusCode::kInternal);

  SlotMap slots;
  ResolveSlots(&slots, &program);
  RecordView view;
  view.Reset(Record("src"), slots);
  Vm vm;
  auto fast = vm.Execute(program, {}, view);
  ASSERT_FALSE(fast.ok());
  EXPECT_EQ(fast.status().code(), StatusCode::kInternal);
}

TEST(LexpressVmBoundsTest, BadTableIndex) {
  Program program;
  program.constants.push_back(Value{"x"});
  program.code.push_back(Instruction{OpCode::kPushConst, 0, 0});
  program.code.push_back(Instruction{OpCode::kLookup, 2, 0});
  auto reference = Vm::ExecuteReference(program, {}, Record("src"));
  ASSERT_FALSE(reference.ok());
  EXPECT_EQ(reference.status().code(), StatusCode::kInternal);

  SlotMap slots;
  ResolveSlots(&slots, &program);
  RecordView view;
  view.Reset(Record("src"), slots);
  Vm vm;
  auto fast = vm.Execute(program, {}, view);
  ASSERT_FALSE(fast.ok());
  EXPECT_EQ(fast.status().code(), StatusCode::kInternal);
}

// A Vm that just returned an error must still execute correct
// programs correctly afterwards (scratch state fully resets).
TEST(LexpressVmBoundsTest, VmRecoversAfterError) {
  Vm vm;
  Program bad = SingleInstruction(OpCode::kPushConst, 5);
  SlotMap bad_slots;
  ResolveSlots(&bad_slots, &bad);
  RecordView bad_view;
  bad_view.Reset(Record("src"), bad_slots);
  ASSERT_FALSE(vm.Execute(bad, {}, bad_view).ok());

  auto mappings = CompileMappings(
      "mapping M from src to dst { map upper(a0) -> b0; }");
  ASSERT_TRUE(mappings.ok());
  Record record("src");
  record.SetOne("a0", "hello");
  auto mapped = (*mappings)[0].MapRecord(record, &vm);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped->GetFirst("b0"), "HELLO");
}

}  // namespace
}  // namespace metacomm::lexpress
