#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/integrated_schema.h"
#include "core/metacomm.h"

namespace metacomm::core {
namespace {

/// Production-shape deployments: the UM runs its coordinator thread
/// and updates arrive concurrently from LDAP clients and device
/// administrators.
class ThreadedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SystemConfig config;
    config.um.threaded = true;
    auto system = MetaCommSystem::Create(config);
    ASSERT_TRUE(system.ok()) << system.status();
    system_ = std::move(*system);
  }

  void TearDown() override {
    if (system_ != nullptr) system_->update_manager().Stop();
  }

  /// Polls until `pred` holds or ~2s elapse.
  template <typename Pred>
  bool Eventually(Pred pred) {
    for (int i = 0; i < 2000; ++i) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return pred();
  }

  std::unique_ptr<MetaCommSystem> system_;
};

TEST_F(ThreadedTest, LdapUpdateCompletesBeforeClientReturns) {
  // Even in threaded mode, LTAP waits for the UM sequence (§4.4): by
  // the time AddPerson returns, the devices are provisioned.
  ASSERT_TRUE(system_
                  ->AddPerson("John Doe",
                              {{"telephoneNumber", "+1 908 582 4567"}})
                  .ok());
  EXPECT_TRUE(system_->pbx("pbx1")->GetRecord("4567").ok());
  EXPECT_TRUE(system_->mp("mp1")->GetRecord("4567").ok());
}

TEST_F(ThreadedTest, DduConvergesAsynchronously) {
  ASSERT_TRUE(system_
                  ->AddPerson("John Doe",
                              {{"telephoneNumber", "+1 908 582 4567"}})
                  .ok());
  // The device command returns as soon as the device commits; the
  // directory follows shortly after (the paper's brief inconsistency).
  ASSERT_TRUE(system_->pbx("pbx1")
                  ->ExecuteCommand("change station 4567 Room ASYNC-1")
                  .ok());
  ldap::Client client = system_->NewClient();
  EXPECT_TRUE(Eventually([&] {
    auto entry = client.Get("cn=John Doe,ou=People,o=Lucent");
    return entry.ok() && entry->GetFirst("roomNumber") == "ASYNC-1";
  }));
}

TEST_F(ThreadedTest, ConcurrentClientsOnDistinctEntries) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t, &failures] {
      for (int i = 0; i < kPerThread; ++i) {
        std::string extension =
            std::to_string(4000 + t * 100 + i);
        Status status = system_->AddPerson(
            "Person " + extension,
            {{"telephoneNumber", "+1 908 582 " + extension}});
        if (!status.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(system_->pbx("pbx1")->StationCount(),
            static_cast<size_t>(kThreads * kPerThread));
  EXPECT_EQ(system_->mp("mp1")->MailboxCount(),
            static_cast<size_t>(kThreads * kPerThread));
  EXPECT_EQ(system_->update_manager().stats().errors, 0u);
}

TEST_F(ThreadedTest, ConcurrentWritersOnOneEntrySerializeViaLocks) {
  ASSERT_TRUE(system_
                  ->AddPerson("Hot Entry",
                              {{"telephoneNumber", "+1 908 582 4900"}})
                  .ok());
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t, &failures] {
      ldap::Client client = system_->NewClient();
      for (int i = 0; i < 10; ++i) {
        Status status = client.Replace(
            "cn=Hot Entry,ou=People,o=Lucent", "roomNumber",
            "T" + std::to_string(t) + "-" + std::to_string(i));
        if (!status.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  // Whatever write won, device and directory agree.
  ldap::Client client = system_->NewClient();
  EXPECT_TRUE(Eventually([&] {
    auto entry = client.Get("cn=Hot Entry,ou=People,o=Lucent");
    auto station = system_->pbx("pbx1")->GetRecord("4900");
    return entry.ok() && station.ok() &&
           entry->GetFirst("roomNumber") == station->GetFirst("Room");
  }));
}

TEST_F(ThreadedTest, MixedDduAndLdapLoadConverges) {
  constexpr int kPeople = 8;
  for (int i = 0; i < kPeople; ++i) {
    ASSERT_TRUE(system_
                    ->AddPerson("P " + std::to_string(4800 + i),
                                {{"telephoneNumber",
                                  "+1 908 582 " +
                                      std::to_string(4800 + i)}})
                    .ok());
  }
  std::thread ldap_thread([this] {
    ldap::Client client = system_->NewClient();
    for (int i = 0; i < 40; ++i) {
      std::string cn = "P " + std::to_string(4800 + (i % kPeople));
      (void)client.Replace("cn=" + cn + ",ou=People,o=Lucent",
                           "roomNumber", "L" + std::to_string(i));
    }
  });
  std::thread device_thread([this] {
    for (int i = 0; i < 40; ++i) {
      std::string extension = std::to_string(4800 + (i % kPeople));
      (void)system_->pbx("pbx1")->ExecuteCommand(
          "change station " + extension + " Room D" + std::to_string(i));
    }
  });
  ldap_thread.join();
  device_thread.join();

  // Quiesce: wait for the queue to drain, then verify convergence.
  ldap::Client client = system_->NewClient();
  EXPECT_TRUE(Eventually([&] {
    for (int i = 0; i < kPeople; ++i) {
      std::string extension = std::to_string(4800 + i);
      auto entry = client.Get("cn=P " + extension +
                              ",ou=People,o=Lucent");
      auto station = system_->pbx("pbx1")->GetRecord(extension);
      if (!entry.ok() || !station.ok()) return false;
      if (entry->GetFirst("roomNumber") != station->GetFirst("Room")) {
        return false;
      }
    }
    return true;
  }));
}

TEST_F(ThreadedTest, SynchronizeWhileClientsKeepWriting) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(system_
                    ->AddPerson("S " + std::to_string(4700 + i),
                                {{"telephoneNumber",
                                  "+1 908 582 " +
                                      std::to_string(4700 + i)}})
                    .ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<int> write_errors{0};
  std::thread writer([this, &stop, &write_errors] {
    ldap::Client client = system_->NewClient();
    int i = 0;
    while (!stop.load()) {
      Status status = client.Replace(
          "cn=S " + std::to_string(4700 + (i % 10)) +
              ",ou=People,o=Lucent",
          "roomNumber", "W" + std::to_string(i));
      // Quiesce windows may bounce the update; both outcomes are
      // legitimate (the client retries in real deployments).
      if (!status.ok() && status.code() != StatusCode::kConflict &&
          status.code() != StatusCode::kDeadlineExceeded) {
        write_errors.fetch_add(1);
      }
      ++i;
    }
  });
  for (int round = 0; round < 3; ++round) {
    EXPECT_TRUE(system_->update_manager().Synchronize("pbx1").ok());
  }
  stop.store(true);
  writer.join();
  EXPECT_EQ(write_errors.load(), 0);
  EXPECT_FALSE(system_->gateway().IsQuiesced());
}

TEST_F(ThreadedTest, StopAndRestartCoordinator) {
  ASSERT_TRUE(system_
                  ->AddPerson("John Doe",
                              {{"telephoneNumber", "+1 908 582 4567"}})
                  .ok());
  system_->update_manager().Stop();
  // DDU submitted while the coordinator is down: the submitting thread
  // enqueues (locks held) — restart drains it. NOTE: Stop() closes the
  // queue, so a restart needs a fresh start; this documents current
  // semantics: after Stop, queued items are dropped and resync is the
  // recovery path (the UM-crash story of §4.4).
  ASSERT_TRUE(system_->update_manager().Synchronize("pbx1").ok());
}

}  // namespace
}  // namespace metacomm::core
