#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/blocking_queue.h"
#include "common/clock.h"
#include "common/logging.h"

namespace metacomm {
namespace {

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> queue;
  queue.Push(1);
  queue.Push(2);
  queue.Push(3);
  EXPECT_EQ(queue.Size(), 3u);
  EXPECT_EQ(*queue.Pop(), 1);
  EXPECT_EQ(*queue.Pop(), 2);
  EXPECT_EQ(*queue.Pop(), 3);
  EXPECT_TRUE(queue.Empty());
}

TEST(BlockingQueueTest, TryPopNonBlocking) {
  BlockingQueue<int> queue;
  EXPECT_FALSE(queue.TryPop().has_value());
  queue.Push(7);
  auto item = queue.TryPop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(*item, 7);
}

TEST(BlockingQueueTest, CloseDrainsThenSignalsEnd) {
  BlockingQueue<int> queue;
  queue.Push(1);
  queue.Close();
  EXPECT_FALSE(queue.Push(2));  // Dropped after close.
  EXPECT_EQ(*queue.Pop(), 1);  // Drains existing items.
  EXPECT_FALSE(queue.Pop().has_value());
  EXPECT_TRUE(queue.closed());
}

TEST(BlockingQueueTest, PopBlocksUntilPush) {
  BlockingQueue<int> queue;
  std::atomic<bool> got{false};
  std::thread consumer([&queue, &got] {
    auto item = queue.Pop();
    EXPECT_TRUE(item.has_value());
    EXPECT_EQ(*item, 42);
    got.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(got.load());
  queue.Push(42);
  consumer.join();
  EXPECT_TRUE(got.load());
}

TEST(BlockingQueueTest, CloseWakesBlockedConsumer) {
  BlockingQueue<int> queue;
  std::thread consumer([&queue] {
    EXPECT_FALSE(queue.Pop().has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  queue.Close();
  consumer.join();
}

TEST(BlockingQueueTest, MoveOnlyItems) {
  BlockingQueue<std::unique_ptr<int>> queue;
  queue.Push(std::make_unique<int>(9));
  auto item = queue.Pop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(**item, 9);
}

TEST(ClockTest, RealClockIsMonotonic) {
  RealClock* clock = RealClock::Get();
  int64_t a = clock->NowMicros();
  clock->SleepMicros(1000);
  int64_t b = clock->NowMicros();
  EXPECT_GE(b - a, 1000);
}

TEST(ClockTest, SimulatedClockAdvancesManually) {
  SimulatedClock clock(100);
  EXPECT_EQ(clock.NowMicros(), 100);
  clock.Advance(50);
  EXPECT_EQ(clock.NowMicros(), 150);
  // Sleep on a simulated clock advances instead of blocking.
  clock.SleepMicros(25);
  EXPECT_EQ(clock.NowMicros(), 175);
}

TEST(LoggingTest, SinkCapturesAboveThreshold) {
  Logger& logger = Logger::Get();
  LogLevel old_level = logger.min_level();
  std::vector<std::pair<LogLevel, std::string>> captured;
  logger.set_sink([&captured](LogLevel level, const std::string& message) {
    captured.emplace_back(level, message);
  });
  logger.set_min_level(LogLevel::kWarning);

  METACOMM_LOG(kDebug) << "too quiet";
  METACOMM_LOG(kWarning) << "count=" << 7;
  METACOMM_LOG(kError) << "boom";

  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, LogLevel::kWarning);
  EXPECT_EQ(captured[0].second, "count=7");
  EXPECT_EQ(captured[1].second, "boom");

  logger.set_sink(nullptr);
  logger.set_min_level(old_level);
}

TEST(LoggingTest, LevelNames) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(LogLevelName(LogLevel::kWarning), "WARN");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "ERROR");
}

}  // namespace
}  // namespace metacomm
