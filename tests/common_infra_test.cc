#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "common/blocking_queue.h"
#include "common/clock.h"
#include "common/logging.h"
#include "common/sharded_blocking_queue.h"

namespace metacomm {
namespace {

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> queue;
  queue.Push(1);
  queue.Push(2);
  queue.Push(3);
  EXPECT_EQ(queue.Size(), 3u);
  EXPECT_EQ(*queue.Pop(), 1);
  EXPECT_EQ(*queue.Pop(), 2);
  EXPECT_EQ(*queue.Pop(), 3);
  EXPECT_TRUE(queue.Empty());
}

TEST(BlockingQueueTest, TryPopNonBlocking) {
  BlockingQueue<int> queue;
  EXPECT_FALSE(queue.TryPop().has_value());
  queue.Push(7);
  auto item = queue.TryPop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(*item, 7);
}

TEST(BlockingQueueTest, CloseDrainsThenSignalsEnd) {
  BlockingQueue<int> queue;
  queue.Push(1);
  queue.Close();
  EXPECT_FALSE(queue.Push(2));  // Dropped after close.
  EXPECT_EQ(*queue.Pop(), 1);  // Drains existing items.
  EXPECT_FALSE(queue.Pop().has_value());
  EXPECT_TRUE(queue.closed());
}

TEST(BlockingQueueTest, PopBlocksUntilPush) {
  BlockingQueue<int> queue;
  std::atomic<bool> got{false};
  std::thread consumer([&queue, &got] {
    auto item = queue.Pop();
    EXPECT_TRUE(item.has_value());
    EXPECT_EQ(*item, 42);
    got.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(got.load());
  queue.Push(42);
  consumer.join();
  EXPECT_TRUE(got.load());
}

TEST(BlockingQueueTest, CloseWakesBlockedConsumer) {
  BlockingQueue<int> queue;
  std::thread consumer([&queue] {
    EXPECT_FALSE(queue.Pop().has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  queue.Close();
  consumer.join();
}

TEST(BlockingQueueTest, MoveOnlyItems) {
  BlockingQueue<std::unique_ptr<int>> queue;
  queue.Push(std::make_unique<int>(9));
  auto item = queue.Pop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(**item, 9);
}

TEST(ShardedBlockingQueueTest, PerShardFifoOrder) {
  ShardedBlockingQueue<int> queue(4);
  queue.Push(1, 10);
  queue.Push(1, 11);
  queue.Push(3, 30);
  EXPECT_EQ(queue.Size(), 3u);
  EXPECT_EQ(queue.Depth(1), 2u);
  EXPECT_EQ(*queue.Pop(1), 10);
  EXPECT_EQ(*queue.Pop(1), 11);
  EXPECT_EQ(*queue.Pop(3), 30);
  EXPECT_TRUE(queue.Empty());
}

TEST(ShardedBlockingQueueTest, EqualKeysRouteToSameShard) {
  ShardedBlockingQueue<int> queue(8);
  EXPECT_EQ(queue.ShardFor("cn=john doe,ou=people,o=lucent"),
            queue.ShardFor("cn=john doe,ou=people,o=lucent"));
  EXPECT_LT(queue.ShardFor("anything"), queue.shard_count());
}

TEST(ShardedBlockingQueueTest, RoundRobinCoversAllShards) {
  ShardedBlockingQueue<int> queue(3);
  std::set<size_t> seen;
  for (int i = 0; i < 6; ++i) seen.insert(queue.NextShard());
  EXPECT_EQ(seen.size(), 3u);
}

TEST(ShardedBlockingQueueTest, CloseAbortsInsteadOfDraining) {
  // Unlike BlockingQueue, close means abort: Pop must NOT hand out the
  // remaining items — the owner reclaims them via Drain() to release
  // their locks and fail their promises.
  ShardedBlockingQueue<int> queue(2);
  queue.Push(0, 1);
  queue.Push(1, 2);
  queue.Close();
  EXPECT_FALSE(queue.Push(0, 3));
  EXPECT_FALSE(queue.Pop(0).has_value());
  EXPECT_FALSE(queue.TryPop(1).has_value());
  std::vector<int> drained = queue.Drain();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0], 1);
  EXPECT_EQ(drained[1], 2);
  EXPECT_TRUE(queue.Empty());
}

TEST(ShardedBlockingQueueTest, CloseWakesAllBlockedWorkers) {
  ShardedBlockingQueue<int> queue(4);
  std::vector<std::thread> workers;
  for (size_t shard = 0; shard < queue.shard_count(); ++shard) {
    workers.emplace_back([&queue, shard] {
      EXPECT_FALSE(queue.Pop(shard).has_value());
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  queue.Close();
  for (std::thread& worker : workers) worker.join();
}

TEST(ShardedBlockingQueueTest, PopBlocksUntilPushOnOwnShard) {
  ShardedBlockingQueue<int> queue(2);
  std::atomic<bool> got{false};
  std::thread consumer([&queue, &got] {
    auto item = queue.Pop(0);
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, 42);
    got.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  queue.Push(1, 7);  // Other shard: must not wake shard 0's consumer.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(got.load());
  queue.Push(0, 42);
  consumer.join();
  EXPECT_EQ(*queue.TryPopAny(), 7);
}

TEST(ShardedBlockingQueueTest, TryPopAnyScansShards) {
  ShardedBlockingQueue<std::unique_ptr<int>> queue(4);
  EXPECT_FALSE(queue.TryPopAny().has_value());
  queue.Push(2, std::make_unique<int>(9));
  auto item = queue.TryPopAny();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(**item, 9);
}

TEST(ClockTest, RealClockIsMonotonic) {
  RealClock* clock = RealClock::Get();
  int64_t a = clock->NowMicros();
  clock->SleepMicros(1000);
  int64_t b = clock->NowMicros();
  EXPECT_GE(b - a, 1000);
}

TEST(ClockTest, SimulatedClockAdvancesManually) {
  SimulatedClock clock(100);
  EXPECT_EQ(clock.NowMicros(), 100);
  clock.Advance(50);
  EXPECT_EQ(clock.NowMicros(), 150);
  // Sleep on a simulated clock advances instead of blocking.
  clock.SleepMicros(25);
  EXPECT_EQ(clock.NowMicros(), 175);
}

TEST(LoggingTest, SinkCapturesAboveThreshold) {
  Logger& logger = Logger::Get();
  LogLevel old_level = logger.min_level();
  std::vector<std::pair<LogLevel, std::string>> captured;
  logger.set_sink([&captured](LogLevel level, const std::string& message) {
    captured.emplace_back(level, message);
  });
  logger.set_min_level(LogLevel::kWarning);

  METACOMM_LOG(kDebug) << "too quiet";
  METACOMM_LOG(kWarning) << "count=" << 7;
  METACOMM_LOG(kError) << "boom";

  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, LogLevel::kWarning);
  EXPECT_EQ(captured[0].second, "count=7");
  EXPECT_EQ(captured[1].second, "boom");

  logger.set_sink(nullptr);
  logger.set_min_level(old_level);
}

TEST(LoggingTest, LevelNames) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(LogLevelName(LogLevel::kWarning), "WARN");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "ERROR");
}

}  // namespace
}  // namespace metacomm
