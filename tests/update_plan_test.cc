#include <gtest/gtest.h>

#include "core/integrated_schema.h"
#include "core/metacomm.h"

namespace metacomm::core {
namespace {

using lexpress::DescriptorOp;
using lexpress::UpdateDescriptor;

/// Exercises the update execution plan (paper §6: "an update execution
/// plan is generated, determining in which order the updates to the
/// various data sources should be applied") without executing it.
class UpdatePlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SystemConfig config;
    config.pbxs = {
        PbxMappingParams{.name = "pbx9", .extension_prefix = "9",
                         .phone_prefix = "+1 908 582 "},
        PbxMappingParams{.name = "pbx5", .extension_prefix = "5",
                         .phone_prefix = "+1 908 582 "},
    };
    auto system = MetaCommSystem::Create(config);
    ASSERT_TRUE(system.ok()) << system.status();
    system_ = std::move(*system);
  }

  UpdateDescriptor PersonUpdate(DescriptorOp op, const char* old_ext,
                                const char* new_ext) {
    UpdateDescriptor update;
    update.op = op;
    update.schema = "ldap";
    update.source = "ldap";
    auto fill = [](lexpress::Record* record, const char* ext) {
      record->set_schema("ldap");
      record->SetOne("cn", "Jill Lu");
      record->SetOne("telephoneNumber",
                     std::string("+1 908 582 ") + ext);
    };
    if (old_ext != nullptr) fill(&update.old_record, old_ext);
    if (new_ext != nullptr) fill(&update.new_record, new_ext);
    if (new_ext != nullptr) {
      update.new_record.SetOne(kLastUpdaterAttr, "ldap");
    }
    return update;
  }

  /// Repository sequence of the plan ops, e.g. {"ldap","pbx9","mp1"}.
  static std::vector<std::string> Repos(const UpdatePlan& plan) {
    std::vector<std::string> out;
    for (const PlannedOp& op : plan.ops) out.push_back(op.repository);
    return out;
  }

  std::unique_ptr<MetaCommSystem> system_;
};

TEST_F(UpdatePlanTest, AddFansOutToOwningPartitionOnly) {
  auto plan = system_->update_manager().PlanUpdate(
      PersonUpdate(DescriptorOp::kAdd, nullptr, "9123"),
      /*ldap_current=*/false);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(Repos(*plan),
            (std::vector<std::string>{"ldap", "pbx9", "mp1"}));
  for (const PlannedOp& op : plan->ops) {
    if (op.repository != "ldap") {
      EXPECT_EQ(op.update.op, DescriptorOp::kAdd);
      EXPECT_FALSE(op.update.conditional);
    }
  }
  // The closure derived the device-facing attributes.
  EXPECT_EQ(plan->final_ldap.GetFirst("DefinityExtension"), "9123");
  EXPECT_EQ(plan->final_ldap.GetFirst("MpMailboxNumber"), "9123");
}

TEST_F(UpdatePlanTest, DirectoryWriteComesFirst) {
  auto plan = system_->update_manager().PlanUpdate(
      PersonUpdate(DescriptorOp::kModify, "9123", "9124"),
      /*ldap_current=*/true);
  ASSERT_TRUE(plan.ok());
  ASSERT_FALSE(plan->ops.empty());
  EXPECT_EQ(plan->ops.front().repository, "ldap");
  // Path A: directory already current -> the view op is conditional
  // (idempotent re-apply).
  EXPECT_TRUE(plan->ops.front().update.conditional);
}

TEST_F(UpdatePlanTest, PartitionMovePlansDeleteThenAdd) {
  // The §4.2 example: a telephone-number change that moves the person
  // from pbx9's dial plan to pbx5's becomes a deletion at one switch
  // and an add at the other.
  auto plan = system_->update_manager().PlanUpdate(
      PersonUpdate(DescriptorOp::kModify, "9123", "5123"),
      /*ldap_current=*/true);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->ops.size(), 4u) << plan->ToString();
  EXPECT_EQ(plan->ops[0].repository, "ldap");
  EXPECT_EQ(plan->ops[1].repository, "pbx9");
  EXPECT_EQ(plan->ops[1].update.op, DescriptorOp::kDelete);
  EXPECT_EQ(plan->ops[2].repository, "pbx5");
  EXPECT_EQ(plan->ops[2].update.op, DescriptorOp::kAdd);
  EXPECT_EQ(plan->ops[3].repository, "mp1");
  EXPECT_EQ(plan->ops[3].update.op, DescriptorOp::kModify);
}

TEST_F(UpdatePlanTest, DeletePlansDeprovisionEverywhere) {
  auto plan = system_->update_manager().PlanUpdate(
      PersonUpdate(DescriptorOp::kDelete, "9123", nullptr),
      /*ldap_current=*/false);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(Repos(*plan),
            (std::vector<std::string>{"ldap", "pbx9", "mp1"}));
  for (const PlannedOp& op : plan->ops) {
    EXPECT_EQ(op.update.op, DescriptorOp::kDelete);
  }
  // Path A delete (already gone from the view): no ldap op planned.
  plan = system_->update_manager().PlanUpdate(
      PersonUpdate(DescriptorOp::kDelete, "9123", nullptr),
      /*ldap_current=*/true);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(Repos(*plan), (std::vector<std::string>{"pbx9", "mp1"}));
}

TEST_F(UpdatePlanTest, OriginatorOpIsMarkedConditional) {
  // A device-originated update plans a conditional reapplication to
  // the originating switch (§5.4).
  UpdateDescriptor update =
      PersonUpdate(DescriptorOp::kModify, "9123", "9123");
  update.source = "pbx9";
  update.new_record.SetOne("roomNumber", "1A-1");
  update.new_record.SetOne(kLastUpdaterAttr, "pbx9");
  update.explicit_attrs.insert("roomNumber");

  auto plan = system_->update_manager().PlanUpdate(update,
                                                   /*ldap_current=*/false);
  ASSERT_TRUE(plan.ok());
  bool saw_conditional_pbx9 = false;
  for (const PlannedOp& op : plan->ops) {
    if (op.repository == "pbx9") {
      saw_conditional_pbx9 = op.update.conditional;
    } else if (op.repository == "mp1") {
      EXPECT_FALSE(op.update.conditional);
    }
  }
  EXPECT_TRUE(saw_conditional_pbx9) << plan->ToString();
}

TEST_F(UpdatePlanTest, SkippedRepositoriesAbsentFromPlan) {
  // Outside both switch partitions: only the directory and the MP
  // (which accepts any telephone number) appear.
  auto plan = system_->update_manager().PlanUpdate(
      PersonUpdate(DescriptorOp::kAdd, nullptr, "7123"),
      /*ldap_current=*/false);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(Repos(*plan), (std::vector<std::string>{"ldap", "mp1"}));
}

TEST_F(UpdatePlanTest, ToStringIsReadable) {
  auto plan = system_->update_manager().PlanUpdate(
      PersonUpdate(DescriptorOp::kModify, "9123", "5123"),
      /*ldap_current=*/true);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->ToString(),
            "modify@ldap? -> delete@pbx9 -> add@pbx5 -> modify@mp1");
}

TEST_F(UpdatePlanTest, ClosureFixpointFailureSurfaces) {
  SystemConfig config;
  config.um.closure_max_iterations = 0;  // Force immediate cap.
  auto system = MetaCommSystem::Create(config);
  ASSERT_TRUE(system.ok());
  auto plan = (*system)->update_manager().PlanUpdate(
      PersonUpdate(DescriptorOp::kAdd, nullptr, "9123"),
      /*ldap_current=*/false);
  EXPECT_EQ(plan.status().code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace metacomm::core
