#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "ldap/backend.h"

namespace metacomm::ldap {
namespace {

/// Model-based property test: random operation sequences run against
/// the Backend AND a deliberately naive reference model; both must
/// accept/reject the same operations and end in the same state. The
/// model encodes exactly the LDAP semantics the paper leans on:
/// parent-must-exist, leaf-only deletes, per-entry atomicity, RDN
/// protection.
class Model {
 public:
  /// Mirrors Backend::Add.
  bool Add(const Entry& entry) {
    std::string key = entry.dn().Normalized();
    if (entry.dn().IsRoot()) return false;
    if (entries_.count(key) > 0) return false;
    if (entry.dn().depth() > 1 &&
        entries_.count(entry.dn().Parent().Normalized()) == 0) {
      return false;
    }
    entries_.emplace(key, entry);
    return true;
  }

  /// Mirrors Backend::Delete (leaf-only).
  bool Delete(const Dn& dn) {
    std::string key = dn.Normalized();
    auto it = entries_.find(key);
    if (it == entries_.end()) return false;
    for (const auto& [other_key, other] : entries_) {
      if (other_key != key && other.dn().Parent().Normalized() == key) {
        return false;  // Non-leaf.
      }
    }
    entries_.erase(it);
    return true;
  }

  /// Mirrors Backend::Modify with a single kReplace (non-RDN attr).
  bool Replace(const Dn& dn, const std::string& attr,
               const std::vector<std::string>& values) {
    auto it = entries_.find(dn.Normalized());
    if (it == entries_.end()) return false;
    it->second.Set(attr, values);
    return true;
  }

  /// Mirrors Backend::ModifyRdn for leaves.
  bool Rename(const Dn& dn, const Rdn& new_rdn) {
    std::string key = dn.Normalized();
    auto it = entries_.find(key);
    if (it == entries_.end()) return false;
    Dn new_dn = dn.WithLeaf(new_rdn);
    std::string new_key = new_dn.Normalized();
    if (new_key != key && entries_.count(new_key) > 0) return false;
    for (const auto& [other_key, other] : entries_) {
      if (other_key != key && other.dn().Parent().Normalized() == key) {
        return false;  // Keep the model simple: rename leaves only.
      }
    }
    Entry entry = it->second;
    // delete_old_rdn semantics for single-AVA RDNs.
    for (const Ava& ava : dn.leaf().avas()) {
      entry.RemoveValue(ava.attribute, ava.value);
    }
    for (const Ava& ava : new_rdn.avas()) {
      entry.AddValue(ava.attribute, ava.value);
    }
    entry.set_dn(new_dn);
    entries_.erase(it);
    entries_.emplace(new_key, entry);
    return true;
  }

  size_t Size() const { return entries_.size(); }

  const std::map<std::string, Entry>& entries() const { return entries_; }

 private:
  std::map<std::string, Entry> entries_;
};

Entry MakeEntry(const Dn& dn, Random& rng) {
  Entry entry(dn);
  entry.AddObjectClass("top");
  for (const Ava& ava : dn.leaf().avas()) {
    entry.AddValue(ava.attribute, ava.value);
  }
  if (rng.Bernoulli(0.6)) {
    entry.SetOne("description", "d" + std::to_string(rng.Uniform(5)));
  }
  return entry;
}

class BackendModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BackendModelTest, RandomOpsAgreeWithModel) {
  Random rng(GetParam());
  Backend backend;  // Schema-less: pure tree semantics under test.
  Model model;

  // A small universe of names so collisions/conflicts actually happen.
  std::vector<Dn> universe;
  for (const char* org : {"o=A", "o=B"}) {
    Dn suffix = *Dn::Parse(org);
    universe.push_back(suffix);
    for (int ou = 0; ou < 2; ++ou) {
      Dn container = suffix.Child(Rdn("ou", "u" + std::to_string(ou)));
      universe.push_back(container);
      for (int person = 0; person < 4; ++person) {
        universe.push_back(
            container.Child(Rdn("cn", "p" + std::to_string(person))));
      }
    }
  }

  for (int step = 0; step < 2000; ++step) {
    const Dn& dn = universe[rng.Uniform(universe.size())];
    switch (rng.Uniform(4)) {
      case 0: {  // Add.
        Entry entry = MakeEntry(dn, rng);
        bool model_ok = model.Add(entry);
        Status status = backend.Add(entry);
        ASSERT_EQ(status.ok(), model_ok)
            << "step " << step << " add " << dn.ToString() << ": "
            << status;
        break;
      }
      case 1: {  // Delete.
        bool model_ok = model.Delete(dn);
        Status status = backend.Delete(dn);
        ASSERT_EQ(status.ok(), model_ok)
            << "step " << step << " delete " << dn.ToString() << ": "
            << status;
        break;
      }
      case 2: {  // Replace a non-RDN attribute.
        std::vector<std::string> values;
        if (rng.Bernoulli(0.8)) {
          values.push_back("v" + std::to_string(rng.Uniform(5)));
        }
        Modification mod;
        mod.type = Modification::Type::kReplace;
        mod.attribute = "description";
        mod.values = values;
        bool model_ok = model.Replace(dn, "description", values);
        Status status = backend.Modify(dn, {mod});
        ASSERT_EQ(status.ok(), model_ok)
            << "step " << step << " modify " << dn.ToString() << ": "
            << status;
        break;
      }
      default: {  // Rename a leaf within the person namespace.
        if (dn.leaf().avas().front().attribute != "cn") break;
        Rdn new_rdn("cn", "p" + std::to_string(rng.Uniform(6)));
        bool model_ok = model.Rename(dn, new_rdn);
        Status status = backend.ModifyRdn(dn, new_rdn, true);
        ASSERT_EQ(status.ok(), model_ok)
            << "step " << step << " rename " << dn.ToString() << " -> "
            << new_rdn.ToString() << ": " << status;
        break;
      }
    }
    ASSERT_EQ(backend.Size(), model.Size()) << "step " << step;
  }

  // Final deep comparison.
  std::vector<Entry> dump = backend.DumpAll();
  ASSERT_EQ(dump.size(), model.Size());
  for (const Entry& entry : dump) {
    auto it = model.entries().find(entry.dn().Normalized());
    ASSERT_NE(it, model.entries().end()) << entry.dn().ToString();
    EXPECT_TRUE(entry == it->second)
        << "backend:\n" << entry.ToString() << "model:\n"
        << it->second.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendModelTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 42u,
                                           20260705u));

}  // namespace
}  // namespace metacomm::ldap
