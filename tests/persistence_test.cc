#include "ldap/persistence.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/metacomm.h"

namespace metacomm::ldap {
namespace {

Entry Person(const char* dn_text, const char* cn) {
  Entry entry(*Dn::Parse(dn_text));
  entry.AddObjectClass("top");
  entry.AddObjectClass("person");
  entry.SetOne("cn", cn);
  entry.SetOne("sn", "X");
  return entry;
}

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Entry suffix(*Dn::Parse("o=Lucent"));
    suffix.AddObjectClass("top");
    suffix.SetOne("o", "Lucent");
    ASSERT_TRUE(backend_.Add(suffix).ok());
    ASSERT_TRUE(backend_.Add(Person("cn=A,o=Lucent", "A")).ok());
    ASSERT_TRUE(backend_.Add(Person("cn=B,o=Lucent", "B")).ok());
    path_ = std::string(::testing::TempDir()) + "/metacomm_dit_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".ldif";
  }

  void TearDown() override { std::remove(path_.c_str()); }

  Backend backend_;
  std::string path_;
};

TEST_F(PersistenceTest, ExportImportRoundTrip) {
  std::string text = ExportLdif(backend_);
  Backend fresh;
  auto loaded = ImportLdif(&fresh, text);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(*loaded, 3u);
  EXPECT_EQ(fresh.Size(), backend_.Size());
  auto entry = fresh.Get(*Dn::Parse("cn=A,o=Lucent"));
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->GetFirst("cn"), "A");
}

TEST_F(PersistenceTest, FileRoundTrip) {
  ASSERT_TRUE(SaveToLdifFile(backend_, path_).ok());
  Backend fresh;
  auto loaded = LoadFromLdifFile(&fresh, path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(*loaded, 3u);
  EXPECT_TRUE(fresh.Exists(*Dn::Parse("cn=B,o=Lucent")));
}

TEST_F(PersistenceTest, ImportIsIdempotent) {
  std::string text = ExportLdif(backend_);
  auto reloaded = ImportLdif(&backend_, text);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(*reloaded, 0u);  // Everything already present.
  EXPECT_EQ(backend_.Size(), 3u);
}

TEST_F(PersistenceTest, ChangeRecordsRejected) {
  Backend fresh;
  auto loaded = ImportLdif(&fresh,
                           "dn: cn=X,o=L\nchangetype: delete\n");
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PersistenceTest, MissingFileReported) {
  Backend fresh;
  EXPECT_EQ(LoadFromLdifFile(&fresh, "/nonexistent/dir/x.ldif")
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(PersistenceRestartTest, UmRestartReloadsAndResynchronizes) {
  // The §4.4 crash story end-to-end: run a deployment, lose the
  // process, restart from the LDIF snapshot, resynchronize with the
  // devices that kept changing meanwhile.
  std::string path = std::string(::testing::TempDir()) +
                     "/metacomm_restart.ldif";
  devices::DefinityPbx pbx(devices::PbxConfig{.name = "pbx1"});

  {
    auto system = core::MetaCommSystem::Create(core::SystemConfig{});
    ASSERT_TRUE(system.ok());
    ASSERT_TRUE((*system)
                    ->AddPerson("John Doe",
                                {{"telephoneNumber", "+1 908 582 4567"}})
                    .ok());
    ASSERT_TRUE(
        SaveToLdifFile((*system)->server().backend(), path).ok());
    // "Process dies" — the system goes away; mirror its PBX state
    // into our standalone device (which, being hardware, survives).
    auto station = (*system)->pbx("pbx1")->GetRecord("4567");
    ASSERT_TRUE(station.ok());
    ASSERT_TRUE(pbx.AddRecord(*station).ok());
  }

  // The device keeps moving while MetaComm is down.
  ASSERT_TRUE(pbx.ExecuteCommand("change station 4567 Room DOWN-1").ok());

  // Restart: fresh system, reload the snapshot, resync.
  auto restarted = core::MetaCommSystem::Create(core::SystemConfig{});
  ASSERT_TRUE(restarted.ok());
  auto loaded =
      LoadFromLdifFile(&(*restarted)->server().backend(), path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_GE(*loaded, 1u);

  // Replay the surviving device's state into the restarted system's
  // PBX (simulating that it is the same physical switch).
  auto dump = pbx.DumpAll();
  ASSERT_TRUE(dump.ok());
  (*restarted)->pbx("pbx1")->faults().set_drop_notifications(true);
  for (const auto& record : *dump) {
    ASSERT_TRUE((*restarted)->pbx("pbx1")->AddRecord(record).ok());
  }
  (*restarted)->pbx("pbx1")->faults().set_drop_notifications(false);

  ASSERT_TRUE((*restarted)->update_manager().Synchronize("pbx1").ok());
  ldap::Client client = (*restarted)->NewClient();
  auto entry = client.Get("cn=John Doe,ou=People,o=Lucent");
  ASSERT_TRUE(entry.ok()) << entry.status();
  EXPECT_EQ(entry->GetFirst("roomNumber"), "DOWN-1");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace metacomm::ldap
