#include "lexpress/analyzer.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/integrated_schema.h"
#include "core/mapping_gen.h"
#include "ldap/schema.h"

namespace metacomm::lexpress {
namespace {

/// Golden tests per analyzer rule: each seeded defect class must be
/// flagged with its rule id, and the clean programs (including the
/// repo's own generated mappings) must produce zero diagnostics.

std::vector<Diagnostic> RunAnalyzer(std::string_view source,
                            AnalyzerOptions options = {}) {
  return Analyzer(std::move(options)).AnalyzeSource(source);
}

bool Has(const std::vector<Diagnostic>& diags, const std::string& rule,
         const std::string& mapping = "") {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) {
                       return d.rule_id == rule &&
                              (mapping.empty() || d.mapping == mapping);
                     });
}

size_t Count(const std::vector<Diagnostic>& diags,
             const std::string& rule) {
  return std::count_if(diags.begin(), diags.end(),
                       [&](const Diagnostic& d) {
                         return d.rule_id == rule;
                       });
}

AnalyzerOptions DirectoryOptions() {
  AnalyzerOptions options;
  for (const std::string& name :
       core::BuildIntegratedSchema().AttributeNames()) {
    options.schemas["ldap"].insert(name);
  }
  options.schemas["pbx"] = {"Extension",    "Name",    "Room",   "Cos",
                            "CoveragePath", "SetType", "Port"};
  options.schemas["mp"] = {"MailboxNumber", "SubscriberName",
                           "SubscriberId",  "Pin",
                           "Greeting",      "EmailAddress"};
  return options;
}

TEST(AnalyzerTest, ParseErrorIsLx000) {
  auto diags = RunAnalyzer("mapping broken from a to b {");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule_id, "LX000");
  EXPECT_EQ(diags[0].severity, DiagSeverity::kError);
  EXPECT_TRUE(HasErrors(diags));
}

TEST(AnalyzerTest, CompileErrorIsLx000) {
  auto diags = RunAnalyzer(
      "mapping bad from a to b {\n"
      "  map nosuchfn(X) -> Y;\n"
      "}\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule_id, "LX000");
  EXPECT_EQ(diags[0].mapping, "bad");
}

TEST(AnalyzerTest, NonConvergentCycleIsLx001) {
  auto diags = RunAnalyzer(
      "mapping fwd from a to b {\n"
      "  map upper(X) -> Y;\n"
      "}\n"
      "mapping back from b to a {\n"
      "  map lower(Y) -> X;\n"
      "}\n");
  ASSERT_TRUE(Has(diags, "LX001"));
  EXPECT_TRUE(HasErrors(diags));
  // The message names every mapping that could opt out of the error.
  auto it = std::find_if(diags.begin(), diags.end(),
                         [](const Diagnostic& d) {
                           return d.rule_id == "LX001";
                         });
  EXPECT_NE(it->message.find("fwd"), std::string::npos);
  EXPECT_NE(it->message.find("back"), std::string::npos);
}

TEST(AnalyzerTest, AllowCyclesSilencesLx001) {
  auto diags = RunAnalyzer(
      "mapping fwd from a to b {\n"
      "  option allow_cycles = true;\n"
      "  map upper(X) -> Y;\n"
      "}\n"
      "mapping back from b to a {\n"
      "  option allow_cycles = true;\n"
      "  map lower(Y) -> X;\n"
      "}\n");
  EXPECT_TRUE(diags.empty());
}

TEST(AnalyzerTest, ConvergentIdentityCycleIsSilent) {
  auto diags = RunAnalyzer(
      "mapping fwd from a to b {\n"
      "  map X -> Y;\n"
      "}\n"
      "mapping back from b to a {\n"
      "  map Y -> X;\n"
      "}\n");
  EXPECT_FALSE(Has(diags, "LX001"));
}

TEST(AnalyzerTest, PartitionOverlapIsLx002) {
  // "45" is a prefix of "451": every 451x extension satisfies both.
  auto diags = RunAnalyzer(
      "mapping east from ldap to pbx {\n"
      "  option target_name = \"east\";\n"
      "  partition when prefix(Ext, \"45\");\n"
      "  map Cn -> Name;\n"
      "}\n"
      "mapping west from ldap to pbx {\n"
      "  option target_name = \"west\";\n"
      "  partition when prefix(Ext, \"451\");\n"
      "  map Cn -> Name;\n"
      "}\n");
  EXPECT_TRUE(Has(diags, "LX002", "east"));
  EXPECT_TRUE(HasErrors(diags));
}

TEST(AnalyzerTest, MissingPartitionOverlapsSiblingInstance) {
  // A mapping with no partition accepts everything, so it collides
  // with any sibling instance of the same schema pair.
  auto diags = RunAnalyzer(
      "mapping east from ldap to pbx {\n"
      "  option target_name = \"east\";\n"
      "  partition when prefix(Ext, \"45\");\n"
      "  map Cn -> Name;\n"
      "}\n"
      "mapping anywhere from ldap to pbx {\n"
      "  option target_name = \"roam\";\n"
      "  map Cn -> Name;\n"
      "}\n");
  EXPECT_TRUE(Has(diags, "LX002"));
}

TEST(AnalyzerTest, DisjointPartitionsAreSilent) {
  auto diags = RunAnalyzer(
      "mapping east from ldap to pbx {\n"
      "  option target_name = \"east\";\n"
      "  partition when prefix(Ext, \"45\");\n"
      "  map Cn -> Name;\n"
      "}\n"
      "mapping west from ldap to pbx {\n"
      "  option target_name = \"west\";\n"
      "  partition when prefix(Ext, \"46\");\n"
      "  map Cn -> Name;\n"
      "}\n");
  EXPECT_FALSE(Has(diags, "LX002"));
}

TEST(AnalyzerTest, DisjunctsOnDifferentAttrsDoNotProveOverlap) {
  // The paper-style partition pairs an extension prefix with a phone
  // prefix; the cross terms constrain different attributes, and the
  // analyzer must not call that an overlap.
  auto diags = RunAnalyzer(
      "mapping east from ldap to pbx {\n"
      "  option target_name = \"east\";\n"
      "  partition when prefix(Ext, \"45\") or prefix(Tel, \"+1 45\");\n"
      "  map Cn -> Name;\n"
      "}\n"
      "mapping west from ldap to pbx {\n"
      "  option target_name = \"west\";\n"
      "  partition when prefix(Ext, \"46\") or prefix(Tel, \"+1 46\");\n"
      "  map Cn -> Name;\n"
      "}\n");
  EXPECT_FALSE(Has(diags, "LX002"));
}

TEST(AnalyzerTest, UnsatisfiablePartitionIsLx003) {
  auto diags = RunAnalyzer(
      "mapping never from ldap to pbx {\n"
      "  partition when eq(Cos, \"1\") and eq(Cos, \"2\");\n"
      "  map Cn -> Name;\n"
      "}\n");
  ASSERT_TRUE(Has(diags, "LX003", "never"));
  EXPECT_FALSE(HasErrors(diags));  // Warning, not error.
}

TEST(AnalyzerTest, ConflictingPrefixAndEqIsLx003) {
  auto diags = RunAnalyzer(
      "mapping never from ldap to pbx {\n"
      "  partition when prefix(Ext, \"45\") and eq(Ext, \"9000\");\n"
      "  map Cn -> Name;\n"
      "}\n");
  EXPECT_TRUE(Has(diags, "LX003", "never"));
}

TEST(AnalyzerTest, SatisfiableDisjunctKeepsPartitionAlive) {
  // One dead disjunct is fine as long as another can hold.
  auto diags = RunAnalyzer(
      "mapping ok from ldap to pbx {\n"
      "  partition when (eq(Cos, \"1\") and eq(Cos, \"2\"))"
      " or prefix(Ext, \"45\");\n"
      "  map Cn -> Name;\n"
      "}\n");
  EXPECT_FALSE(Has(diags, "LX003"));
}

TEST(AnalyzerTest, UnguardedWriteWriteIsLx004) {
  auto diags = RunAnalyzer(
      "mapping hr from hr to ldap {\n"
      "  map JobTitle -> title;\n"
      "}\n"
      "mapping crm from crm to ldap {\n"
      "  map Role -> title;\n"
      "}\n");
  EXPECT_TRUE(Has(diags, "LX004", "hr"));
  EXPECT_TRUE(Has(diags, "LX004", "crm"));
}

TEST(AnalyzerTest, OriginatorOptionGuardsLx004) {
  auto diags = RunAnalyzer(
      "mapping hr from hr to ldap {\n"
      "  option originator = \"LastUpdater\";\n"
      "  map JobTitle -> title;\n"
      "}\n"
      "mapping crm from crm to ldap {\n"
      "  map Role -> title;\n"
      "}\n");
  EXPECT_FALSE(Has(diags, "LX004", "hr"));
  EXPECT_TRUE(Has(diags, "LX004", "crm"));
}

TEST(AnalyzerTest, LastUpdaterStampGuardsLx004) {
  // Stamping the origin marker is the §5.4 protocol; both mappings do
  // it, so neither is flagged and the marker itself is never treated
  // as a conflicting target.
  auto diags = RunAnalyzer(
      "mapping hr from hr to ldap {\n"
      "  map \"hr\" -> LastUpdater;\n"
      "  map JobTitle -> title;\n"
      "}\n"
      "mapping crm from crm to ldap {\n"
      "  map \"crm\" -> LastUpdater;\n"
      "  map Role -> title;\n"
      "}\n");
  EXPECT_FALSE(Has(diags, "LX004"));
}

TEST(AnalyzerTest, SameSourceSchemaWritersAreNotLx004) {
  // Two instances of one schema write through the same mapping text;
  // conflicts need *different* source schemas.
  auto diags = RunAnalyzer(
      "mapping a from pbx to ldap {\n"
      "  map Name -> cn;\n"
      "}\n"
      "mapping b from pbx to ldap {\n"
      "  map Name -> cn;\n"
      "}\n");
  EXPECT_FALSE(Has(diags, "LX004"));
}

TEST(AnalyzerTest, UnknownAttributesAreLx005) {
  auto diags = RunAnalyzer(
      "mapping m from pbx to ldap {\n"
      "  map Extensoin -> telephoneNumber;\n"
      "  map Name -> commonNmae;\n"
      "  map Name -> cn when present(Roome);\n"
      "}\n",
      DirectoryOptions());
  EXPECT_EQ(Count(diags, "LX005"), 3u);  // read, target, guard read.
  EXPECT_TRUE(HasErrors(diags));
}

TEST(AnalyzerTest, UndeclaredSchemasSkipLx005) {
  auto diags = RunAnalyzer(
      "mapping m from hr to crm {\n"
      "  map Anything -> Whatever;\n"
      "}\n",
      DirectoryOptions());
  EXPECT_FALSE(Has(diags, "LX005"));
}

TEST(AnalyzerTest, AttributeAliasesAreKnownToLx005) {
  // surname/commonName alias sn/cn in the directory schema.
  auto diags = RunAnalyzer(
      "mapping m from pbx to ldap {\n"
      "  map Name -> commonName;\n"
      "  map Name -> surname;\n"
      "}\n",
      DirectoryOptions());
  EXPECT_FALSE(Has(diags, "LX005"));
}

TEST(AnalyzerTest, DeadMappingIsLx006) {
  auto diags = RunAnalyzer(
      "mapping orphan from fax to ldap {\n"
      "  map FaxNumber -> facsimileTelephoneNumber;\n"
      "}\n",
      DirectoryOptions());
  ASSERT_TRUE(Has(diags, "LX006", "orphan"));
  EXPECT_FALSE(HasErrors(diags));
}

TEST(AnalyzerTest, MappingFedByAnotherMappingIsNotDead) {
  // "fax" is not a declared repository, but ldapToFax targets it, so
  // faxToLdap can fire on reflected updates.
  auto diags = RunAnalyzer(
      "mapping ldapToFax from ldap to fax {\n"
      "  map facsimileTelephoneNumber -> FaxNumber;\n"
      "}\n"
      "mapping faxToLdap from fax to ldap {\n"
      "  map FaxNumber -> facsimileTelephoneNumber;\n"
      "}\n",
      DirectoryOptions());
  EXPECT_FALSE(Has(diags, "LX006"));
}

TEST(AnalyzerTest, ShadowedRuleIsLx007) {
  auto diags = RunAnalyzer(
      "mapping m from pbx to ldap {\n"
      "  map \"station\" -> description;\n"
      "  map SetType -> description;\n"
      "}\n");
  ASSERT_TRUE(Has(diags, "LX007", "m"));
}

TEST(AnalyzerTest, GuardedFirstRuleDoesNotShadow) {
  auto diags = RunAnalyzer(
      "mapping m from pbx to ldap {\n"
      "  map \"station\" -> description when present(SetType);\n"
      "  map Name -> description;\n"
      "}\n");
  EXPECT_FALSE(Has(diags, "LX007"));
}

TEST(AnalyzerTest, FallibleFirstRuleDoesNotShadow) {
  // An attribute reference may evaluate empty, so later rules live.
  auto diags = RunAnalyzer(
      "mapping m from pbx to ldap {\n"
      "  map SetType -> description;\n"
      "  map Name -> description;\n"
      "}\n");
  EXPECT_FALSE(Has(diags, "LX007"));
}

TEST(AnalyzerTest, CleanProgramHasZeroDiagnostics) {
  auto diags = RunAnalyzer(
      "mapping pbxToLdap from pbx to ldap {\n"
      "  option target_name = \"ldap\";\n"
      "  option allow_cycles = true;\n"
      "  key Extension -> DefinityExtension;\n"
      "  map \"pbx1\" -> LastUpdater;\n"
      "  map Name -> cn;\n"
      "  map surname(Name) -> sn;\n"
      "}\n"
      "mapping ldapToPbx from ldap to pbx {\n"
      "  option target_name = \"pbx1\";\n"
      "  option originator = \"LastUpdater\";\n"
      "  option allow_cycles = true;\n"
      "  partition when prefix(DefinityExtension, \"45\");\n"
      "  key DefinityExtension -> Extension;\n"
      "  map cn -> Name;\n"
      "}\n",
      DirectoryOptions());
  EXPECT_TRUE(diags.empty()) << diags.size() << " unexpected findings, "
                             << "first: "
                             << (diags.empty() ? ""
                                               : diags[0].ToString());
}

TEST(AnalyzerTest, GeneratedMappingsAreClean) {
  // Acceptance gate: the repo's own mapping generator must pass its own
  // linter with zero findings, under the real integrated schema.
  std::string source = core::GeneratePbxMappings({}) + "\n" +
                       core::GenerateMpMappings({});
  auto diags = RunAnalyzer(source, DirectoryOptions());
  EXPECT_TRUE(diags.empty())
      << "first: " << (diags.empty() ? "" : diags[0].ToString());
}

TEST(AnalyzerTest, TwoPbxGeneratedTopologyIsClean) {
  // Disjoint dial plans (45xx vs 46xx) must not trip LX002.
  core::PbxMappingParams pbx1;
  pbx1.name = "pbx1";
  pbx1.extension_prefix = "45";
  core::PbxMappingParams pbx2;
  pbx2.name = "pbx2";
  pbx2.extension_prefix = "46";
  std::string source = core::GeneratePbxMappings(pbx1) + "\n" +
                       core::GeneratePbxMappings(pbx2) + "\n" +
                       core::GenerateMpMappings({});
  auto diags = RunAnalyzer(source, DirectoryOptions());
  EXPECT_TRUE(diags.empty())
      << "first: " << (diags.empty() ? "" : diags[0].ToString());
}

TEST(AnalyzerTest, DiagnosticToStringFormat) {
  Diagnostic d;
  d.rule_id = "LX005";
  d.severity = DiagSeverity::kError;
  d.mapping = "m";
  d.line = 12;
  d.message = "boom";
  EXPECT_EQ(d.ToString(), "12: error: [LX005] boom (mapping m)");
  EXPECT_STREQ(DiagSeverityName(DiagSeverity::kWarning), "warning");
}

TEST(AnalyzerTest, DiagnosticsAreOrderedByLine) {
  auto diags = RunAnalyzer(
      "mapping m from pbx to ldap {\n"
      "  map Extensoin -> telephoneNumber;\n"
      "  map Name -> commonNmae;\n"
      "}\n"
      "mapping orphan from fax to ldap {\n"
      "  map FaxNumber -> facsimileTelephoneNumber;\n"
      "}\n",
      DirectoryOptions());
  ASSERT_GE(diags.size(), 2u);
  for (size_t i = 1; i < diags.size(); ++i) {
    EXPECT_LE(diags[i - 1].line, diags[i].line);
  }
}

}  // namespace
}  // namespace metacomm::lexpress
