#include "ldap/text_protocol.h"

#include <gtest/gtest.h>

#include "core/metacomm.h"
#include "ldap/client.h"
#include "ldap/server.h"

namespace metacomm::ldap {
namespace {

class TextProtocolTest : public ::testing::Test {
 protected:
  TextProtocolTest()
      : server_(Schema::Standard(),
                ServerConfig{.allow_anonymous_writes = true}),
        handler_(&server_),
        remote_([this](const std::string& request) {
          return handler_.Handle(request);
        }),
        client_(&remote_) {
    Entry suffix(*Dn::Parse("o=Lucent"));
    suffix.AddObjectClass("top");
    suffix.AddObjectClass("organization");
    suffix.SetOne("o", "Lucent");
    EXPECT_TRUE(server_.backend().Add(suffix).ok());
    server_.AddUser(*Dn::Parse("cn=admin,o=Lucent"), "secret");
  }

  LdapServer server_;
  TextProtocolHandler handler_;   // The "remote" end.
  TextProtocolClient remote_;     // LdapService over the wire.
  Client client_;                 // Ordinary client on top of it.
};

TEST_F(TextProtocolTest, CrudOverTheWire) {
  ASSERT_TRUE(client_
                  .Add("cn=John Doe,o=Lucent",
                       {{"objectClass", "top"},
                        {"objectClass", "person"},
                        {"cn", "John Doe"},
                        {"sn", "Doe"},
                        {"telephoneNumber", "+1 908 582 9000"}})
                  .ok());
  auto entry = client_.Get("cn=John Doe,o=Lucent");
  ASSERT_TRUE(entry.ok()) << entry.status();
  EXPECT_EQ(entry->GetFirst("telephoneNumber"), "+1 908 582 9000");

  ASSERT_TRUE(client_.Replace("cn=John Doe,o=Lucent", "sn", "D").ok());
  entry = client_.Get("cn=John Doe,o=Lucent");
  EXPECT_EQ(entry->GetFirst("sn"), "D");

  ASSERT_TRUE(client_.ModifyRdn("cn=John Doe,o=Lucent", "cn=Jack").ok());
  EXPECT_TRUE(client_.Get("cn=Jack,o=Lucent").ok());

  ASSERT_TRUE(client_.Delete("cn=Jack,o=Lucent").ok());
  EXPECT_EQ(client_.Get("cn=Jack,o=Lucent").status().code(),
            StatusCode::kNotFound);
}

TEST_F(TextProtocolTest, SearchWithFilterAttrsAndScope) {
  for (const char* cn : {"Ada", "Grace"}) {
    ASSERT_TRUE(client_
                    .Add(std::string("cn=") + cn + ",o=Lucent",
                         {{"objectClass", "top"},
                          {"objectClass", "person"},
                          {"cn", cn},
                          {"sn", "S"},
                          {"telephoneNumber", "+1 908 582 9000"}})
                    .ok());
  }
  auto results = client_.Search("o=Lucent", "(cn=A*)");
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0].GetFirst("cn"), "Ada");

  // Projection travels over the wire too.
  SearchRequest request;
  request.base = *Dn::Parse("o=Lucent");
  request.filter = Filter::Equality("objectClass", "person");
  request.attributes = {"cn"};
  OpContext ctx;
  auto projected = remote_.Search(ctx, request);
  ASSERT_TRUE(projected.ok());
  ASSERT_EQ(projected->entries.size(), 2u);
  EXPECT_FALSE(projected->entries[0].Has("telephoneNumber"));
}

TEST_F(TextProtocolTest, CompareAndBind) {
  ASSERT_TRUE(client_
                  .Add("cn=Ada,o=Lucent", {{"objectClass", "top"},
                                           {"objectClass", "person"},
                                           {"cn", "Ada"},
                                           {"sn", "L"}})
                  .ok());
  auto yes = client_.Compare("cn=Ada,o=Lucent", "sn", "L");
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(*yes);
  auto no = client_.Compare("cn=Ada,o=Lucent", "sn", "X");
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(*no);

  EXPECT_TRUE(client_.Bind("cn=admin,o=Lucent", "secret").ok());
  EXPECT_EQ(client_.Bind("cn=admin,o=Lucent", "nope").code(),
            StatusCode::kPermissionDenied);
}

TEST_F(TextProtocolTest, BindStateLivesInTheHandlerSession) {
  // Against a server that requires authentication, the handler carries
  // the bind across subsequent operations — like a real connection.
  LdapServer secured(Schema::Standard(), ServerConfig{});
  Entry suffix(*Dn::Parse("o=Lucent"));
  suffix.AddObjectClass("top");
  suffix.AddObjectClass("organization");
  suffix.SetOne("o", "Lucent");
  ASSERT_TRUE(secured.backend().Add(suffix).ok());
  secured.AddUser(*Dn::Parse("cn=admin,o=Lucent"), "secret");

  TextProtocolHandler session(&secured);
  TextProtocolClient wire(
      [&session](const std::string& r) { return session.Handle(r); });
  Client client(&wire);

  EXPECT_EQ(client.Delete("cn=X,o=Lucent").code(),
            StatusCode::kPermissionDenied);
  ASSERT_TRUE(client.Bind("cn=admin,o=Lucent", "secret").ok());
  // Now authorized (NotFound, not PermissionDenied).
  EXPECT_EQ(client.Delete("cn=X,o=Lucent").code(), StatusCode::kNotFound);
}

TEST_F(TextProtocolTest, MalformedRequestsRejected) {
  EXPECT_NE(handler_.Handle(""), "");
  EXPECT_TRUE(StartsWith(handler_.Handle("FROBNICATE"), "RESULT 2"));
  EXPECT_TRUE(StartsWith(handler_.Handle("ADD\nnot ldif"), "RESULT 2"));
  EXPECT_TRUE(
      StartsWith(handler_.Handle("SEARCH base: ,,bad,,\n"), "RESULT 2"));
}

TEST_F(TextProtocolTest, ValuesNeedingBase64SurviveTheWire) {
  ASSERT_TRUE(client_
                  .Add("cn=Spacey,o=Lucent",
                       {{"objectClass", "top"},
                        {"objectClass", "person"},
                        {"cn", "Spacey"},
                        {"sn", "S"},
                        {"description", " leading space"}})
                  .ok());
  auto entry = client_.Get("cn=Spacey,o=Lucent");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->GetFirst("description"), " leading space");

  // Modify values with embedded newlines must not corrupt the framing.
  ASSERT_TRUE(client_
                  .Replace("cn=Spacey,o=Lucent", "description",
                           "line one\nline two")
                  .ok());
  entry = client_.Get("cn=Spacey,o=Lucent");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->GetFirst("description"), "line one\nline two");
}

TEST(TextProtocolMetaCommTest, FullStackOverTheWire) {
  // Client -> wire -> handler -> LTAP gateway -> server, with the
  // Update Manager fanning out to devices: the whole paper pipeline
  // behind a protocol boundary.
  auto system = core::MetaCommSystem::Create(core::SystemConfig{});
  ASSERT_TRUE(system.ok());
  TextProtocolHandler session(&(*system)->gateway());
  TextProtocolClient wire(
      [&session](const std::string& r) { return session.Handle(r); });
  Client client(&wire);

  ASSERT_TRUE(client
                  .Add("cn=John Doe,ou=People,o=Lucent",
                       {{"objectClass", "top"},
                        {"objectClass", "person"},
                        {"objectClass", "organizationalPerson"},
                        {"objectClass", "inetOrgPerson"},
                        {"cn", "John Doe"},
                        {"sn", "Doe"},
                        {"telephoneNumber", "+1 908 582 4567"}})
                  .ok());
  EXPECT_TRUE((*system)->pbx("pbx1")->GetRecord("4567").ok());
  EXPECT_TRUE((*system)->mp("mp1")->GetRecord("4567").ok());
}

}  // namespace
}  // namespace metacomm::ldap
