#include "ldap/text_protocol.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/metacomm.h"
#include "ldap/client.h"
#include "ldap/result.h"
#include "ldap/server.h"
#include "net/tcp_client.h"
#include "net/tcp_server.h"

namespace metacomm::ldap {
namespace {

/// The whole protocol suite runs twice: once with the in-process
/// transport (handler called directly) and once over a real TCP
/// connection through net::TcpServer/TcpClient. The test bodies are
/// identical — the wire must be indistinguishable from the function
/// call.
class TextProtocolTest : public ::testing::TestWithParam<bool> {
 protected:
  TextProtocolTest()
      : server_(Schema::Standard(),
                ServerConfig{.allow_anonymous_writes = true}),
        handler_(&server_),
        remote_([this](const std::string& request) {
          return Transport(request);
        }),
        client_(&remote_) {
    Entry suffix(*Dn::Parse("o=Lucent"));
    suffix.AddObjectClass("top");
    suffix.AddObjectClass("organization");
    suffix.SetOne("o", "Lucent");
    EXPECT_TRUE(server_.backend().Add(suffix).ok());
    server_.AddUser(*Dn::Parse("cn=admin,o=Lucent"), "secret");
    if (GetParam()) StartWire();
  }

  /// Brings up a real socket server around server_ and connects one
  /// persistent client connection; Transport() then routes every
  /// request through it.
  void StartWire() {
    net::TcpServerConfig config;
    config.busy_reply = BusyReply();
    config.error_reply = FramingErrorReply();
    tcp_server_ = std::make_unique<net::TcpServer>(
        std::move(config), [this] {
          auto session = std::make_shared<TextProtocolHandler>(&server_);
          return [session](const std::string& request) {
            return session->Handle(request);
          };
        });
    EXPECT_TRUE(tcp_server_->Start().ok());
    tcp_client_ = std::make_unique<net::TcpClient>();
    EXPECT_TRUE(
        tcp_client_->Connect("127.0.0.1", tcp_server_->port()).ok());
  }

  std::string Transport(const std::string& request) {
    return tcp_client_ ? tcp_client_->Call(request)
                       : handler_.Handle(request);
  }

  LdapServer server_;
  TextProtocolHandler handler_;   // The "remote" end (in-process mode).
  std::unique_ptr<net::TcpServer> tcp_server_;   // TCP mode only.
  std::unique_ptr<net::TcpClient> tcp_client_;
  TextProtocolClient remote_;     // LdapService over the wire.
  Client client_;                 // Ordinary client on top of it.
};

INSTANTIATE_TEST_SUITE_P(
    Transports, TextProtocolTest, ::testing::Bool(),
    [](const ::testing::TestParamInfo<bool>& info) {
      return info.param ? "Tcp" : "InProcess";
    });

TEST_P(TextProtocolTest, CrudOverTheWire) {
  ASSERT_TRUE(client_
                  .Add("cn=John Doe,o=Lucent",
                       {{"objectClass", "top"},
                        {"objectClass", "person"},
                        {"cn", "John Doe"},
                        {"sn", "Doe"},
                        {"telephoneNumber", "+1 908 582 9000"}})
                  .ok());
  auto entry = client_.Get("cn=John Doe,o=Lucent");
  ASSERT_TRUE(entry.ok()) << entry.status();
  EXPECT_EQ(entry->GetFirst("telephoneNumber"), "+1 908 582 9000");

  ASSERT_TRUE(client_.Replace("cn=John Doe,o=Lucent", "sn", "D").ok());
  entry = client_.Get("cn=John Doe,o=Lucent");
  EXPECT_EQ(entry->GetFirst("sn"), "D");

  ASSERT_TRUE(client_.ModifyRdn("cn=John Doe,o=Lucent", "cn=Jack").ok());
  EXPECT_TRUE(client_.Get("cn=Jack,o=Lucent").ok());

  ASSERT_TRUE(client_.Delete("cn=Jack,o=Lucent").ok());
  EXPECT_EQ(client_.Get("cn=Jack,o=Lucent").status().code(),
            StatusCode::kNotFound);
}

TEST_P(TextProtocolTest, SearchWithFilterAttrsAndScope) {
  for (const char* cn : {"Ada", "Grace"}) {
    ASSERT_TRUE(client_
                    .Add(std::string("cn=") + cn + ",o=Lucent",
                         {{"objectClass", "top"},
                          {"objectClass", "person"},
                          {"cn", cn},
                          {"sn", "S"},
                          {"telephoneNumber", "+1 908 582 9000"}})
                    .ok());
  }
  auto results = client_.Search("o=Lucent", "(cn=A*)");
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0].GetFirst("cn"), "Ada");

  // Projection travels over the wire too.
  SearchRequest request;
  request.base = *Dn::Parse("o=Lucent");
  request.filter = Filter::Equality("objectClass", "person");
  request.attributes = {"cn"};
  OpContext ctx;
  auto projected = remote_.Search(ctx, request);
  ASSERT_TRUE(projected.ok());
  ASSERT_EQ(projected->entries.size(), 2u);
  EXPECT_FALSE(projected->entries[0].Has("telephoneNumber"));
}

TEST_P(TextProtocolTest, CompareAndBind) {
  ASSERT_TRUE(client_
                  .Add("cn=Ada,o=Lucent", {{"objectClass", "top"},
                                           {"objectClass", "person"},
                                           {"cn", "Ada"},
                                           {"sn", "L"}})
                  .ok());
  auto yes = client_.Compare("cn=Ada,o=Lucent", "sn", "L");
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(*yes);
  auto no = client_.Compare("cn=Ada,o=Lucent", "sn", "X");
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(*no);

  EXPECT_TRUE(client_.Bind("cn=admin,o=Lucent", "secret").ok());
  EXPECT_EQ(client_.Bind("cn=admin,o=Lucent", "nope").code(),
            StatusCode::kPermissionDenied);
}

TEST_P(TextProtocolTest, BindStateLivesInTheHandlerSession) {
  // Against a server that requires authentication, the handler carries
  // the bind across subsequent operations — like a real connection.
  LdapServer secured(Schema::Standard(), ServerConfig{});
  Entry suffix(*Dn::Parse("o=Lucent"));
  suffix.AddObjectClass("top");
  suffix.AddObjectClass("organization");
  suffix.SetOne("o", "Lucent");
  ASSERT_TRUE(secured.backend().Add(suffix).ok());
  secured.AddUser(*Dn::Parse("cn=admin,o=Lucent"), "secret");

  TextProtocolHandler session(&secured);
  TextProtocolClient wire(
      [&session](const std::string& r) { return session.Handle(r); });
  Client client(&wire);

  EXPECT_EQ(client.Delete("cn=X,o=Lucent").code(),
            StatusCode::kPermissionDenied);
  ASSERT_TRUE(client.Bind("cn=admin,o=Lucent", "secret").ok());
  // Now authorized (NotFound, not PermissionDenied).
  EXPECT_EQ(client.Delete("cn=X,o=Lucent").code(), StatusCode::kNotFound);
}

TEST_P(TextProtocolTest, MalformedRequestsRejected) {
  EXPECT_NE(handler_.Handle(""), "");
  EXPECT_TRUE(StartsWith(handler_.Handle("FROBNICATE"), "RESULT 2"));
  EXPECT_TRUE(StartsWith(handler_.Handle("ADD\nnot ldif"), "RESULT 2"));
  EXPECT_TRUE(
      StartsWith(handler_.Handle("SEARCH base: ,,bad,,\n"), "RESULT 2"));
}

TEST_P(TextProtocolTest, ValuesNeedingBase64SurviveTheWire) {
  ASSERT_TRUE(client_
                  .Add("cn=Spacey,o=Lucent",
                       {{"objectClass", "top"},
                        {"objectClass", "person"},
                        {"cn", "Spacey"},
                        {"sn", "S"},
                        {"description", " leading space"}})
                  .ok());
  auto entry = client_.Get("cn=Spacey,o=Lucent");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->GetFirst("description"), " leading space");

  // Modify values with embedded newlines must not corrupt the framing.
  ASSERT_TRUE(client_
                  .Replace("cn=Spacey,o=Lucent", "description",
                           "line one\nline two")
                  .ok());
  entry = client_.Get("cn=Spacey,o=Lucent");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->GetFirst("description"), "line one\nline two");
}

TEST(TextProtocolMetaCommTest, FullStackOverTheWire) {
  // Client -> wire -> handler -> LTAP gateway -> server, with the
  // Update Manager fanning out to devices: the whole paper pipeline
  // behind a protocol boundary.
  auto system = core::MetaCommSystem::Create(core::SystemConfig{});
  ASSERT_TRUE(system.ok());
  TextProtocolHandler session(&(*system)->gateway());
  TextProtocolClient wire(
      [&session](const std::string& r) { return session.Handle(r); });
  Client client(&wire);

  ASSERT_TRUE(client
                  .Add("cn=John Doe,ou=People,o=Lucent",
                       {{"objectClass", "top"},
                        {"objectClass", "person"},
                        {"objectClass", "organizationalPerson"},
                        {"objectClass", "inetOrgPerson"},
                        {"cn", "John Doe"},
                        {"sn", "Doe"},
                        {"telephoneNumber", "+1 908 582 4567"}})
                  .ok());
  EXPECT_TRUE((*system)->pbx("pbx1")->GetRecord("4567").ok());
  EXPECT_TRUE((*system)->mp("mp1")->GetRecord("4567").ok());
}

/// An LdapService that fails every operation with a fixed status —
/// lets the tests below steer exactly what travels in a RESULT line.
class FailingService : public LdapService {
 public:
  explicit FailingService(Status result) : result_(std::move(result)) {}

  Status Add(const OpContext&, const AddRequest&) override {
    return result_;
  }
  Status Delete(const OpContext&, const DeleteRequest&) override {
    return result_;
  }
  Status Modify(const OpContext&, const ModifyRequest&) override {
    return result_;
  }
  Status ModifyRdn(const OpContext&, const ModifyRdnRequest&) override {
    return result_;
  }
  StatusOr<SearchResult> Search(const OpContext&,
                                const SearchRequest&) override {
    return result_;
  }
  Status Compare(const OpContext&, const CompareRequest&) override {
    return result_;
  }
  StatusOr<std::string> Bind(const BindRequest&) override {
    return result_;
  }

 private:
  Status result_;
};

// Regression (newline framing): a Status message carrying newlines
// used to be emitted verbatim into the RESULT line, splitting it in
// two and desynchronizing the reply stream. It must arrive as ONE line
// on the wire and reconstruct the original text — including runs of
// spaces, which the old split-on-whitespace parser collapsed.
TEST(TextProtocolResultTest, ResultMessagesWithNewlinesStayOneLine) {
  const std::string gnarly = "line one\nline  two\twith \\ backslash";
  FailingService failing(Status::Internal(gnarly));
  TextProtocolHandler handler(&failing);

  std::string reply = handler.Handle("DELETE dn: cn=X,o=Lucent");
  // Exactly one line: the only newline is the terminator.
  ASSERT_FALSE(reply.empty());
  EXPECT_EQ(reply.find('\n'), reply.size() - 1) << reply;

  TextProtocolClient wire(
      [&handler](const std::string& r) { return handler.Handle(r); });
  OpContext ctx;
  Status status = wire.Delete(ctx, DeleteRequest{*Dn::Parse("cn=X,o=Lucent")});
  EXPECT_FALSE(status.ok());
  // The message survives the round trip byte-for-byte: embedded
  // newline, double space, tab and backslash all intact.
  EXPECT_NE(status.message().find(gnarly), std::string::npos)
      << status.message();
}

// Regression (compare-false sentinel): COMPARE results used to ride on
// a magic message string; they now travel as the LDAP result codes
// 5/6, and the client decides from the code + TRUE/FALSE body alone —
// the message text must not matter.
TEST(TextProtocolResultTest, CompareFalseTravelsAsResultCode5) {
  LdapServer server(Schema::Standard(),
                    ServerConfig{.allow_anonymous_writes = true});
  Entry suffix(*Dn::Parse("o=Lucent"));
  suffix.AddObjectClass("top");
  suffix.AddObjectClass("organization");
  suffix.SetOne("o", "Lucent");
  ASSERT_TRUE(server.backend().Add(suffix).ok());
  TextProtocolHandler handler(&server);
  ASSERT_TRUE(StartsWith(
      handler.Handle("ADD\ndn: cn=Ada,o=Lucent\nobjectClass: top\n"
                     "objectClass: person\ncn: Ada\nsn: L\n"),
      "RESULT 0"));

  EXPECT_TRUE(StartsWith(
      handler.Handle("COMPARE dn: cn=Ada,o=Lucent\nattr: sn\nvalue: L"),
      "RESULT 6"));
  EXPECT_TRUE(StartsWith(
      handler.Handle("COMPARE dn: cn=Ada,o=Lucent\nattr: sn\nvalue: X"),
      "RESULT 5"));

  // Client side keys on the code, whatever the message says.
  TextProtocolClient wire([](const std::string&) {
    return std::string("RESULT 5 some unrelated text\nFALSE\n");
  });
  OpContext ctx;
  CompareRequest request{*Dn::Parse("cn=Ada,o=Lucent"), "sn", "X"};
  Status verdict = wire.Compare(ctx, request);
  EXPECT_TRUE(IsCompareFalse(verdict)) << verdict;

  TextProtocolClient wire_true([](const std::string&) {
    return std::string("RESULT 6 whatever\nTRUE\n");
  });
  EXPECT_TRUE(wire_true.Compare(ctx, request).ok());
}

// Regression (unchecked atoi): a RESULT code wider than the integer
// range used to wrap silently into a bogus small code; it must be
// rejected as a malformed reply instead.
TEST(TextProtocolResultTest, OverflowingResultCodeRejected) {
  TextProtocolClient wire([](const std::string&) {
    return std::string("RESULT 99999999999999999999999 oops\n");
  });
  OpContext ctx;
  Status status = wire.Delete(ctx, DeleteRequest{*Dn::Parse("cn=X,o=L")});
  EXPECT_EQ(status.code(), StatusCode::kInternal) << status;

  TextProtocolClient wire_negative([](const std::string&) {
    return std::string("RESULT -3 oops\n");
  });
  EXPECT_EQ(
      wire_negative.Delete(ctx, DeleteRequest{*Dn::Parse("cn=X,o=L")})
          .code(),
      StatusCode::kInternal);
}

// Regression (unchecked atoll): an overflowing or trailing-garbage
// SEARCH limit: header used to be silently misread; it must be a
// protocol error.
TEST(TextProtocolResultTest, OverflowingSearchLimitRejected) {
  LdapServer server(Schema::Standard(),
                    ServerConfig{.allow_anonymous_writes = true});
  Entry suffix(*Dn::Parse("o=Lucent"));
  suffix.AddObjectClass("top");
  suffix.AddObjectClass("organization");
  suffix.SetOne("o", "Lucent");
  ASSERT_TRUE(server.backend().Add(suffix).ok());
  TextProtocolHandler handler(&server);

  EXPECT_TRUE(StartsWith(
      handler.Handle("SEARCH base: o=Lucent\nscope: sub\n"
                     "filter: (objectClass=*)\n"
                     "limit: 99999999999999999999999\n"),
      "RESULT 2"));
  EXPECT_TRUE(StartsWith(
      handler.Handle("SEARCH base: o=Lucent\nscope: sub\n"
                     "filter: (objectClass=*)\nlimit: 12x\n"),
      "RESULT 2"));
  // A sane limit still works.
  EXPECT_TRUE(StartsWith(
      handler.Handle("SEARCH base: o=Lucent\nscope: sub\n"
                     "filter: (objectClass=*)\nlimit: 5\n"),
      "RESULT 0"));
}

}  // namespace
}  // namespace metacomm::ldap
