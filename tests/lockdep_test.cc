// Tests for the runtime lock-order validator (common/lockdep).
//
// The death tests seed a deliberate A→B / B→A inversion and verify
// the process aborts with BOTH acquisition stacks in the report: the
// live stack of the violating acquisition and the stored stack of the
// first acquisition that recorded the conflicting order. The
// non-death tests pin down the bookkeeping: clean ascending nesting,
// try-lock semantics, cv-wait release/reacquire, and out-of-order
// unlock.
//
// The "existing threaded suites run clean under lockdep" half of the
// coverage doesn't live here: METACOMM_LOCKDEP defaults ON for every
// non-Release build, so the whole ctest suite — threaded_test,
// parallel_um_test, snapshot_stress_test, fault_tolerance_test,
// wire_test — exercises the real hierarchy with validation live (the
// LiveValidation test below proves the hooks are actually firing).

#include "common/lockdep.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/mutex.h"

#if METACOMM_LOCKDEP

namespace metacomm {
namespace {

// The validator tracks rank VALUES, not which enum member supplied
// them; the real table's members double as test ranks
// (kUmSync=200 "low", kUmStats=520 "mid", kLeaf=990 "high").

class LockdepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Death tests spawn threads inside the death statement; the
    // threadsafe style re-executes the test in a clean child so the
    // fork never races a live thread.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST_F(LockdepTest, CleanAscendingNestingPasses) {
  Mutex outer(LockRank::kUmSync, "test.clean.outer");
  Mutex mid(LockRank::kUmStats, "test.clean.mid");
  Mutex inner(LockRank::kLeaf, "test.clean.inner");
  EXPECT_EQ(lockdep::HeldCount(), 0u);
  {
    MutexLock a(&outer);
    EXPECT_EQ(lockdep::HeldCount(), 1u);
    MutexLock b(&mid);
    MutexLock c(&inner);
    EXPECT_EQ(lockdep::HeldCount(), 3u);
  }
  EXPECT_EQ(lockdep::HeldCount(), 0u);
}

TEST_F(LockdepTest, LiveValidation) {
  // Proves the hooks are compiled in and firing in this build: the
  // process-wide acquisition counter moves when we lock.
  uint64_t before = lockdep::CheckedAcquisitions();
  Mutex mu(LockRank::kLeaf, "test.live");
  {
    MutexLock lock(&mu);
  }
  EXPECT_GT(lockdep::CheckedAcquisitions(), before);
}

TEST_F(LockdepTest, SeededInversionDiesWithBothStacks) {
  // A→B recorded first, then B→A attempted: the report must contain
  // the rank-regression diagnosis, the violating acquisition's live
  // stack AND the stored stack of the acquisition that first recorded
  // the conflicting A→B order.
  EXPECT_DEATH(
      {
        Mutex a(LockRank::kUmSync, "test.inv.a");
        Mutex b(LockRank::kUmStats, "test.inv.b");
        {
          MutexLock la(&a);
          MutexLock lb(&b);  // Records edge test.inv.a -> test.inv.b.
        }
        MutexLock lb(&b);
        MutexLock la(&a);  // Inversion: aborts here.
      },
      "rank regression: acquiring \"test\\.inv\\.a\".*while holding "
      "\"test\\.inv\\.b\".*this \\(violating\\) acquisition stack"
      ".*conflicting prior order \"test\\.inv\\.a\" -> "
      "\"test\\.inv\\.b\" was first recorded at this acquisition "
      "stack");
}

TEST_F(LockdepTest, CrossThreadInversionDies) {
  // The order graph is global: thread 1 legally records A→B, the
  // inversion on thread 2 still dies.
  EXPECT_DEATH(
      {
        Mutex a(LockRank::kUmSync, "test.xinv.a");
        Mutex b(LockRank::kUmStats, "test.xinv.b");
        std::thread recorder([&] {
          MutexLock la(&a);
          MutexLock lb(&b);
        });
        recorder.join();
        std::thread inverter([&] {
          MutexLock lb(&b);
          MutexLock la(&a);
        });
        inverter.join();
      },
      "rank regression.*test\\.xinv\\.a.*first recorded at");
}

TEST_F(LockdepTest, RankRegressionWithoutPriorEdgeDies) {
  // No A→B history at all: still forbidden by the rank table alone,
  // and the report says so instead of printing a stored stack.
  EXPECT_DEATH(
      {
        Mutex low(LockRank::kUmSync, "test.reg.low");
        Mutex high(LockRank::kUmStats, "test.reg.high");
        MutexLock lh(&high);
        MutexLock ll(&low);
      },
      "rank regression.*rank table itself forbids");
}

TEST_F(LockdepTest, SameRankNestingDies) {
  EXPECT_DEATH(
      {
        Mutex first(LockRank::kLeaf, "test.same.first");
        Mutex second(LockRank::kLeaf, "test.same.second");
        MutexLock a(&first);
        MutexLock b(&second);
      },
      "rank regression");
}

TEST_F(LockdepTest, RecursiveAcquisitionDies) {
  EXPECT_DEATH(
      {
        Mutex mu(LockRank::kLeaf, "test.rec");
        mu.Lock();
        mu.Lock();
      },
      "recursive acquisition");
}

TEST_F(LockdepTest, TryLockTracksHeldState) {
  Mutex mu(LockRank::kUmStats, "test.try");
  ASSERT_TRUE(mu.TryLock());
  EXPECT_EQ(lockdep::HeldCount(), 1u);
  mu.Unlock();
  EXPECT_EQ(lockdep::HeldCount(), 0u);
}

TEST_F(LockdepTest, FailedTryLockLeavesNoHeldEntry) {
  Mutex mu(LockRank::kUmStats, "test.tryfail");
  mu.Lock();
  std::thread other([&] {
    EXPECT_FALSE(mu.TryLock());
    EXPECT_EQ(lockdep::HeldCount(), 0u);
  });
  other.join();
  mu.Unlock();
}

TEST_F(LockdepTest, TryLockSuccessConstrainsLaterAcquisitions) {
  // A try-acquire skips order checks itself (it cannot block), but
  // the held entry it pushes still forbids descending follow-ups.
  EXPECT_DEATH(
      {
        Mutex inner(LockRank::kUmStats, "test.tryheld.inner");
        Mutex outer(LockRank::kUmSync, "test.tryheld.outer");
        ASSERT_TRUE(inner.TryLock());
        MutexLock lock(&outer);  // LockRank::kUmSync under LockRank::kUmStats: dies.
      },
      "rank regression");
}

TEST_F(LockdepTest, TryLockThenAscendingBlockingAcquirePasses) {
  Mutex outer(LockRank::kUmSync, "test.tryasc.outer");
  Mutex inner(LockRank::kUmStats, "test.tryasc.inner");
  ASSERT_TRUE(outer.TryLock());
  {
    MutexLock lock(&inner);
    EXPECT_EQ(lockdep::HeldCount(), 2u);
  }
  outer.Unlock();
  EXPECT_EQ(lockdep::HeldCount(), 0u);
}

TEST_F(LockdepTest, CondVarWaitReleasesAndReacquires) {
  Mutex mu(LockRank::kUmStats, "test.cv");
  CondVar cv;
  MutexLock lock(&mu);
  EXPECT_EQ(lockdep::HeldCount(), 1u);
  // Timed wait with an immediate deadline: exercises the
  // release-around-wait and the reacquire on the way out.
  EXPECT_FALSE(cv.WaitUntil(lock, std::chrono::steady_clock::now()));
  EXPECT_EQ(lockdep::HeldCount(), 1u);
}

TEST_F(LockdepTest, OutOfOrderReleaseIsLegal) {
  // Unlock order need not mirror lock order (hand-over-hand).
  Mutex outer(LockRank::kUmSync, "test.ooo.outer");
  Mutex inner(LockRank::kUmStats, "test.ooo.inner");
  outer.Lock();
  inner.Lock();
  outer.Unlock();
  EXPECT_EQ(lockdep::HeldCount(), 1u);
  inner.Unlock();
  EXPECT_EQ(lockdep::HeldCount(), 0u);
}

TEST_F(LockdepTest, EdgeGraphAccumulates) {
  size_t before = lockdep::RecordedEdges();
  Mutex a(LockRank::kUmSync, "test.edges.a");
  Mutex b(LockRank::kUmStats, "test.edges.b");
  MutexLock la(&a);
  MutexLock lb(&b);
  EXPECT_GT(lockdep::RecordedEdges(), before);
}

}  // namespace
}  // namespace metacomm

#else  // !METACOMM_LOCKDEP

TEST(LockdepTest, CompiledOut) {
  GTEST_SKIP() << "built without METACOMM_LOCKDEP; validator is "
                  "compiled out";
}

#endif  // METACOMM_LOCKDEP
