#include "lexpress/mapping.h"

#include <gtest/gtest.h>

namespace metacomm::lexpress {
namespace {

constexpr char kPbxToLdap[] = R"(
mapping PbxToLdap from pbx to ldap {
  option target_name = "ldap";
  key Extension -> DefinityExtension;
  map "pbx1" -> LastUpdater;
  map concat("+1 908 582 ", Extension) -> telephoneNumber;
  map Name -> cn;
  map surname(Name) -> sn;
}
)";

constexpr char kLdapToPbx[] = R"(
mapping LdapToPbx from ldap to pbx {
  option target_name = "pbx1";
  option originator = "LastUpdater";
  partition when prefix(telephoneNumber, "+1 908 582 9");
  key substr(digits(telephoneNumber), -4, 4) -> Extension;
  map DefinityExtension -> Extension;
  map cn -> Name;
  map roomNumber -> Room;
}
)";

Mapping MustCompile(const char* source) {
  auto mappings = CompileMappings(source);
  EXPECT_TRUE(mappings.ok()) << mappings.status();
  EXPECT_EQ(mappings->size(), 1u);
  return std::move((*mappings)[0]);
}

TEST(MappingTest, MapRecordBasic) {
  Mapping mapping = MustCompile(kPbxToLdap);
  Record station("pbx");
  station.SetOne("Extension", "9000");
  station.SetOne("Name", "John Doe");

  auto mapped = mapping.MapRecord(station);
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(mapped->schema(), "ldap");
  EXPECT_EQ(mapped->GetFirst("DefinityExtension"), "9000");
  EXPECT_EQ(mapped->GetFirst("telephoneNumber"), "+1 908 582 9000");
  EXPECT_EQ(mapped->GetFirst("cn"), "John Doe");
  EXPECT_EQ(mapped->GetFirst("sn"), "Doe");
  EXPECT_EQ(mapped->GetFirst("LastUpdater"), "pbx1");
  EXPECT_EQ(mapping.key_target_attr(), "DefinityExtension");
}

TEST(MappingTest, MissingSourceAttrsYieldNoTargetAttrs) {
  Mapping mapping = MustCompile(kPbxToLdap);
  Record station("pbx");
  station.SetOne("Extension", "9000");
  auto mapped = mapping.MapRecord(station);
  ASSERT_TRUE(mapped.ok());
  EXPECT_FALSE(mapped->Has("cn"));
  EXPECT_FALSE(mapped->Has("sn"));
  EXPECT_TRUE(mapped->Has("telephoneNumber"));
}

TEST(MappingTest, AlternateMappingsFirstWins) {
  // The paper's example (§4.2): telephoneNumber -> Extension is first,
  // so when both telephoneNumber and DefinityExtension are present and
  // inconsistent, telephoneNumber wins.
  Mapping mapping = MustCompile(kLdapToPbx);
  Record person("ldap");
  person.SetOne("telephoneNumber", "+1 908 582 9000");
  person.SetOne("DefinityExtension", "9111");  // Inconsistent!
  auto mapped = mapping.MapRecord(person);
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(mapped->GetFirst("Extension"), "9000");
}

TEST(MappingTest, AlternateMappingsFallThrough) {
  // Without a telephoneNumber, the DefinityExtension alternate fires.
  Mapping mapping = MustCompile(kLdapToPbx);
  Record person("ldap");
  person.SetOne("DefinityExtension", "9111");
  auto mapped = mapping.MapRecord(person);
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(mapped->GetFirst("Extension"), "9111");
}

TEST(MappingTest, PartitionAccepts) {
  Mapping mapping = MustCompile(kLdapToPbx);
  Record inside("ldap");
  inside.SetOne("telephoneNumber", "+1 908 582 9000");
  Record outside("ldap");
  outside.SetOne("telephoneNumber", "+1 908 582 5000");
  auto in = mapping.PartitionAccepts(inside);
  auto out = mapping.PartitionAccepts(outside);
  ASSERT_TRUE(in.ok());
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(*in);
  EXPECT_FALSE(*out);
  // An empty record is never in a partition.
  auto empty = mapping.PartitionAccepts(Record("ldap"));
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(*empty);
}

/// The paper's four-case routing table (§4.2).
struct RouteCase {
  const char* old_phone;  // nullptr = no old record content.
  const char* new_phone;
  DescriptorOp op;
  RouteAction expect;
};

class RoutingTest : public ::testing::TestWithParam<RouteCase> {};

TEST_P(RoutingTest, FourCaseTable) {
  Mapping mapping = MustCompile(kLdapToPbx);
  const RouteCase& c = GetParam();
  UpdateDescriptor update;
  update.op = c.op;
  update.schema = "ldap";
  if (c.old_phone != nullptr) {
    update.old_record.SetOne("telephoneNumber", c.old_phone);
  }
  if (c.new_phone != nullptr) {
    update.new_record.SetOne("telephoneNumber", c.new_phone);
  }
  auto action = mapping.Route(update);
  ASSERT_TRUE(action.ok());
  EXPECT_EQ(*action, c.expect);
}

constexpr char kIn[] = "+1 908 582 9000";    // In the partition.
constexpr char kIn2[] = "+1 908 582 9111";   // Also in.
constexpr char kOut[] = "+1 908 582 5000";   // Outside.

INSTANTIATE_TEST_SUITE_P(
    Cases, RoutingTest,
    ::testing::Values(
        // Modify: old/new satisfaction drives the action.
        RouteCase{kIn, kIn2, DescriptorOp::kModify, RouteAction::kModify},
        RouteCase{kOut, kIn, DescriptorOp::kModify, RouteAction::kAdd},
        RouteCase{kIn, kOut, DescriptorOp::kModify, RouteAction::kDelete},
        RouteCase{kOut, kOut, DescriptorOp::kModify, RouteAction::kSkip},
        // Add looks at the new record only.
        RouteCase{nullptr, kIn, DescriptorOp::kAdd, RouteAction::kAdd},
        RouteCase{nullptr, kOut, DescriptorOp::kAdd, RouteAction::kSkip},
        // Delete looks at the old record only.
        RouteCase{kIn, nullptr, DescriptorOp::kDelete,
                  RouteAction::kDelete},
        RouteCase{kOut, nullptr, DescriptorOp::kDelete,
                  RouteAction::kSkip}));

TEST(MappingTest, TranslateModifyBuildsBothImages) {
  Mapping mapping = MustCompile(kLdapToPbx);
  UpdateDescriptor update;
  update.op = DescriptorOp::kModify;
  update.schema = "ldap";
  update.source = "ldap";
  update.old_record.SetOne("telephoneNumber", kIn);
  update.old_record.SetOne("cn", "John Doe");
  update.new_record.SetOne("telephoneNumber", kIn2);
  update.new_record.SetOne("cn", "John Doe");

  auto translated = mapping.Translate(update);
  ASSERT_TRUE(translated.ok());
  ASSERT_TRUE(translated->has_value());
  const UpdateDescriptor& out = **translated;
  EXPECT_EQ(out.op, DescriptorOp::kModify);
  EXPECT_EQ(out.schema, "pbx");
  EXPECT_EQ(out.old_record.GetFirst("Extension"), "9000");
  EXPECT_EQ(out.new_record.GetFirst("Extension"), "9111");
  EXPECT_EQ(out.source, "ldap");
  EXPECT_FALSE(out.conditional);
}

TEST(MappingTest, TranslatePartitionMoveBecomesDelete) {
  // "lexpress translates a modification of a telephone number into two
  // updates: a deletion in one PBX and an add in another" — this is
  // the deletion half for the losing switch.
  Mapping mapping = MustCompile(kLdapToPbx);
  UpdateDescriptor update;
  update.op = DescriptorOp::kModify;
  update.schema = "ldap";
  update.old_record.SetOne("telephoneNumber", kIn);
  update.new_record.SetOne("telephoneNumber", kOut);
  auto translated = mapping.Translate(update);
  ASSERT_TRUE(translated.ok());
  ASSERT_TRUE(translated->has_value());
  EXPECT_EQ((*translated)->op, DescriptorOp::kDelete);
  EXPECT_EQ((*translated)->old_record.GetFirst("Extension"), "9000");
}

TEST(MappingTest, TranslateSkipReturnsNullopt) {
  Mapping mapping = MustCompile(kLdapToPbx);
  UpdateDescriptor update;
  update.op = DescriptorOp::kAdd;
  update.schema = "ldap";
  update.new_record.SetOne("telephoneNumber", kOut);
  auto translated = mapping.Translate(update);
  ASSERT_TRUE(translated.ok());
  EXPECT_FALSE(translated->has_value());
}

TEST(MappingTest, TranslateWrongSchemaRejected) {
  Mapping mapping = MustCompile(kLdapToPbx);
  UpdateDescriptor update;
  update.op = DescriptorOp::kAdd;
  update.schema = "mp";
  EXPECT_FALSE(mapping.Translate(update).ok());
}

TEST(MappingTest, OriginatorMarksConditional) {
  // §5.4: an update whose LastUpdater names this mapping's target is a
  // reapplication and must carry conditional semantics.
  Mapping mapping = MustCompile(kLdapToPbx);
  UpdateDescriptor update;
  update.op = DescriptorOp::kModify;
  update.schema = "ldap";
  update.source = "pbx1";
  update.old_record.SetOne("telephoneNumber", kIn);
  update.new_record.SetOne("telephoneNumber", kIn2);
  update.new_record.SetOne("LastUpdater", "pbx1");

  auto translated = mapping.Translate(update);
  ASSERT_TRUE(translated.ok());
  ASSERT_TRUE(translated->has_value());
  EXPECT_TRUE((*translated)->conditional);

  // A different originator is not conditional.
  update.new_record.SetOne("LastUpdater", "mp1");
  translated = mapping.Translate(update);
  ASSERT_TRUE(translated.ok());
  EXPECT_FALSE((*translated)->conditional);
}

TEST(MappingTest, CompileErrors) {
  EXPECT_FALSE(CompileMappings("mapping X from a to b { }").ok());
  EXPECT_FALSE(
      CompileMappings("mapping X from a to b { option bogus = 1; map a "
                      "-> b; }")
          .ok());
  EXPECT_FALSE(
      CompileMappings("mapping X from a to b { map nosuchfn(a) -> b; }")
          .ok());
}

TEST(MappingTest, SourcesOfCollectsDependencies) {
  Mapping mapping = MustCompile(kLdapToPbx);
  auto sources = mapping.SourcesOf("Extension");
  EXPECT_TRUE(sources.count("telephoneNumber"));
  EXPECT_TRUE(sources.count("DefinityExtension"));
  EXPECT_FALSE(sources.count("cn"));
}

TEST(MappingTest, DynamicCompilationAtRuntime) {
  // §4.2: descriptions can be compiled into a running program. A new
  // "source" appears and its mapping is compiled from text on the fly.
  std::string dynamic_source =
      "mapping NewDevice from widget to ldap {"
      "  key SerialNo -> employeeNumber;"
      "  map Owner -> cn;"
      "}";
  auto mappings = CompileMappings(dynamic_source);
  ASSERT_TRUE(mappings.ok());
  Record widget("widget");
  widget.SetOne("SerialNo", "777");
  widget.SetOne("Owner", "Pat Smith");
  auto mapped = (*mappings)[0].MapRecord(widget);
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(mapped->GetFirst("employeeNumber"), "777");
  EXPECT_EQ(mapped->GetFirst("cn"), "Pat Smith");
}

}  // namespace
}  // namespace metacomm::lexpress
