#include "ldap/dn.h"

#include <gtest/gtest.h>

namespace metacomm::ldap {
namespace {

TEST(RdnTest, ParseSimple) {
  auto rdn = Rdn::Parse("cn=John Doe");
  ASSERT_TRUE(rdn.ok());
  EXPECT_EQ(rdn->avas().size(), 1u);
  EXPECT_EQ(rdn->avas()[0].attribute, "cn");
  EXPECT_EQ(rdn->avas()[0].value, "John Doe");
  EXPECT_EQ(rdn->ToString(), "cn=John Doe");
}

TEST(RdnTest, ParseMultiValued) {
  auto rdn = Rdn::Parse("cn=John+employeeNumber=42");
  ASSERT_TRUE(rdn.ok());
  EXPECT_EQ(rdn->avas().size(), 2u);
  EXPECT_EQ(rdn->ValueOf("cn"), "John");
  EXPECT_EQ(rdn->ValueOf("employeeNumber"), "42");
  // AVAs are kept sorted, so parse order does not matter.
  auto flipped = Rdn::Parse("employeeNumber=42+cn=John");
  ASSERT_TRUE(flipped.ok());
  EXPECT_EQ(rdn->Normalized(), flipped->Normalized());
}

TEST(RdnTest, ParseErrors) {
  EXPECT_FALSE(Rdn::Parse("").ok());
  EXPECT_FALSE(Rdn::Parse("cn").ok());
  EXPECT_FALSE(Rdn::Parse("=value").ok());
  EXPECT_FALSE(Rdn::Parse("cn=").ok());
}

TEST(RdnTest, EscapedComma) {
  auto rdn = Rdn::Parse("cn=Doe\\, John");
  ASSERT_TRUE(rdn.ok());
  EXPECT_EQ(rdn->ValueOf("cn"), "Doe, John");
  EXPECT_EQ(rdn->ToString(), "cn=Doe\\, John");
}

TEST(RdnTest, HexEscape) {
  auto rdn = Rdn::Parse("cn=a\\2Cb");
  ASSERT_TRUE(rdn.ok());
  EXPECT_EQ(rdn->ValueOf("cn"), "a,b");
}

TEST(RdnTest, NormalizedFoldsCaseAndSpace) {
  auto a = Rdn::Parse("CN=John   Doe");
  auto b = Rdn::Parse("cn=john doe");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->Normalized(), b->Normalized());
  EXPECT_TRUE(*a == *b);
}

TEST(DnTest, ParsePaperExample) {
  // Figure 2: "cn=John Doe, o=Marketing, o=Lucent".
  auto dn = Dn::Parse("cn=John Doe, o=Marketing, o=Lucent");
  ASSERT_TRUE(dn.ok());
  EXPECT_EQ(dn->depth(), 3u);
  EXPECT_EQ(dn->leaf().ValueOf("cn"), "John Doe");
  EXPECT_EQ(dn->ToString(), "cn=John Doe,o=Marketing,o=Lucent");
  EXPECT_EQ(dn->Parent().ToString(), "o=Marketing,o=Lucent");
}

TEST(DnTest, RootIsEmpty) {
  auto dn = Dn::Parse("");
  ASSERT_TRUE(dn.ok());
  EXPECT_TRUE(dn->IsRoot());
  EXPECT_TRUE(dn->Parent().IsRoot());
  EXPECT_EQ(dn->ToString(), "");
}

TEST(DnTest, ChildAndWithLeaf) {
  auto base = Dn::Parse("ou=People,o=Lucent");
  ASSERT_TRUE(base.ok());
  Dn child = base->Child(Rdn("cn", "Pat Smith"));
  EXPECT_EQ(child.ToString(), "cn=Pat Smith,ou=People,o=Lucent");
  Dn renamed = child.WithLeaf(Rdn("cn", "Pat Jones"));
  EXPECT_EQ(renamed.ToString(), "cn=Pat Jones,ou=People,o=Lucent");
  EXPECT_EQ(renamed.Parent().Normalized(), base->Normalized());
}

TEST(DnTest, IsWithin) {
  auto lucent = Dn::Parse("o=Lucent");
  auto marketing = Dn::Parse("o=Marketing,o=Lucent");
  auto john = Dn::Parse("cn=John Doe,o=Marketing,o=Lucent");
  auto other = Dn::Parse("o=Marketing,o=Acme");
  ASSERT_TRUE(john.ok());
  EXPECT_TRUE(john->IsWithin(*lucent));
  EXPECT_TRUE(john->IsWithin(*marketing));
  EXPECT_TRUE(john->IsWithin(*john));
  EXPECT_TRUE(john->IsWithin(Dn::Root()));
  EXPECT_FALSE(marketing->IsWithin(*john));
  EXPECT_FALSE(john->IsWithin(*other));
}

TEST(DnTest, EscapeRoundTrip) {
  std::string value = "Smith, John #1 <j+s>";
  Dn dn = Dn::Root().Child(Rdn("cn", value));
  std::string text = dn.ToString();
  auto reparsed = Dn::Parse(text);
  ASSERT_TRUE(reparsed.ok()) << text << ": " << reparsed.status();
  EXPECT_EQ(reparsed->leaf().ValueOf("cn"), value);
}

TEST(DnTest, LeadingTrailingSpaceEscapes) {
  std::string value = " padded ";
  std::string escaped = EscapeDnValue(value);
  EXPECT_EQ(escaped, "\\ padded\\ ");
  auto rdn = Rdn::Parse("cn=" + escaped);
  ASSERT_TRUE(rdn.ok());
  EXPECT_EQ(rdn->ValueOf("cn"), value);
}

TEST(DnTest, NormalizedComparesCaseInsensitive) {
  auto a = Dn::Parse("CN=John Doe,OU=People,O=Lucent");
  auto b = Dn::Parse("cn=john doe, ou=people, o=lucent");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(*a == *b);
}

TEST(DnTest, DanglingEscapeFails) {
  EXPECT_FALSE(Dn::Parse("cn=John\\").ok());
}

TEST(DnTest, DepthOneIsSuffix) {
  auto dn = Dn::Parse("o=Lucent");
  ASSERT_TRUE(dn.ok());
  EXPECT_EQ(dn->depth(), 1u);
  EXPECT_TRUE(dn->Parent().IsRoot());
}

}  // namespace
}  // namespace metacomm::ldap
