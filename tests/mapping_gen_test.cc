#include "core/mapping_gen.h"

#include <gtest/gtest.h>

#include "lexpress/closure.h"
#include "lexpress/mapping.h"

namespace metacomm::core {
namespace {

using lexpress::CompileMappings;
using lexpress::Mapping;
using lexpress::MappingSet;
using lexpress::Record;

TEST(MappingGenTest, PbxPairCompilesAndValidates) {
  PbxMappingParams params;
  params.name = "pbx7";
  params.extension_prefix = "7";
  auto mappings = CompileMappings(GeneratePbxMappings(params));
  ASSERT_TRUE(mappings.ok()) << mappings.status();
  ASSERT_EQ(mappings->size(), 2u);
  EXPECT_EQ((*mappings)[0].source_schema(), "pbx");
  EXPECT_EQ((*mappings)[0].target_schema(), "ldap");
  EXPECT_EQ((*mappings)[1].target_name(), "pbx7");
  EXPECT_EQ((*mappings)[1].originator_attr(), "LastUpdater");

  MappingSet set;
  set.Add((*mappings)[0]);
  set.Add((*mappings)[1]);
  EXPECT_TRUE(set.Validate().ok());
}

TEST(MappingGenTest, PbxRoundTripPreservesStation) {
  auto mappings =
      CompileMappings(GeneratePbxMappings(PbxMappingParams{}));
  ASSERT_TRUE(mappings.ok());
  const Mapping& to_ldap = (*mappings)[0];
  const Mapping& from_ldap = (*mappings)[1];

  Record station("pbx");
  station.SetOne("Extension", "4567");
  station.SetOne("Name", "John Doe");
  station.SetOne("Room", "2C-401");
  station.SetOne("Cos", "2");
  station.SetOne("CoveragePath", "c1");

  auto ldap_record = to_ldap.MapRecord(station);
  ASSERT_TRUE(ldap_record.ok());
  EXPECT_EQ(ldap_record->GetFirst("telephoneNumber"),
            "+1 908 582 4567");
  EXPECT_EQ(ldap_record->GetFirst("employeeType"), "gold");  // Cos 2.

  auto round_trip = from_ldap.MapRecord(*ldap_record);
  ASSERT_TRUE(round_trip.ok());
  EXPECT_EQ(round_trip->GetFirst("Extension"), "4567");
  EXPECT_EQ(round_trip->GetFirst("Name"), "John Doe");
  EXPECT_EQ(round_trip->GetFirst("Room"), "2C-401");
  EXPECT_EQ(round_trip->GetFirst("Cos"), "2");
  EXPECT_EQ(round_trip->GetFirst("CoveragePath"), "c1");
}

TEST(MappingGenTest, ExtensionDigitsParameterized) {
  PbxMappingParams params;
  params.extension_digits = 5;
  auto mappings = CompileMappings(GeneratePbxMappings(params));
  ASSERT_TRUE(mappings.ok());
  Record person("ldap");
  person.SetOne("telephoneNumber", "+1 908 582 91234");
  auto station = (*mappings)[1].MapRecord(person);
  ASSERT_TRUE(station.ok());
  EXPECT_EQ(station->GetFirst("Extension"), "91234");
}

TEST(MappingGenTest, MpPairCompilesAndChainsFromPhone) {
  auto mappings = CompileMappings(GenerateMpMappings(MpMappingParams{}));
  ASSERT_TRUE(mappings.ok()) << mappings.status();
  ASSERT_EQ(mappings->size(), 2u);

  Record person("ldap");
  person.SetOne("cn", "John Doe");
  person.SetOne("telephoneNumber", "+1 908 582 4567");
  auto mailbox = (*mappings)[1].MapRecord(person);
  ASSERT_TRUE(mailbox.ok());
  // "from the telephone number to a voice mailbox identifier" (§4.2).
  EXPECT_EQ(mailbox->GetFirst("MailboxNumber"), "4567");
  EXPECT_EQ(mailbox->GetFirst("SubscriberName"), "John Doe");
}

TEST(MappingGenTest, MpPartitionRespectsExtensionPrefix) {
  MpMappingParams params;
  params.extension_prefix = "9";
  auto mappings = CompileMappings(GenerateMpMappings(params));
  ASSERT_TRUE(mappings.ok());
  const Mapping& from_ldap = (*mappings)[1];

  Record inside("ldap");
  inside.SetOne("telephoneNumber", "+1 908 582 9000");
  Record outside("ldap");
  outside.SetOne("telephoneNumber", "+1 908 582 5000");
  auto in = from_ldap.PartitionAccepts(inside);
  auto out = from_ldap.PartitionAccepts(outside);
  ASSERT_TRUE(in.ok());
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(*in);
  EXPECT_FALSE(*out);
}

TEST(MappingGenTest, GeneratedInstancesDifferOnlyWhereParameterized) {
  // The generator exists to remove the §5.4 repetitiveness: two
  // switches' mapping texts differ exactly in name/prefix.
  // Prefixes chosen outside the Cos table's digit range so the
  // normalization below only touches the parameterized spots.
  std::string a = GeneratePbxMappings(PbxMappingParams{
      .name = "pbxA", .extension_prefix = "8"});
  std::string b = GeneratePbxMappings(PbxMappingParams{
      .name = "pbxB", .extension_prefix = "7"});
  EXPECT_NE(a, b);
  std::string normalized_a = ReplaceAll(ReplaceAll(a, "pbxA", "PBX"),
                                        "\"8\"", "\"P\"");
  normalized_a = ReplaceAll(normalized_a, " 8\"", " P\"");
  std::string normalized_b = ReplaceAll(ReplaceAll(b, "pbxB", "PBX"),
                                        "\"7\"", "\"P\"");
  normalized_b = ReplaceAll(normalized_b, " 7\"", " P\"");
  EXPECT_EQ(normalized_a, normalized_b);
}

TEST(MappingGenTest, TwoPbxsAndMpValidateTogether) {
  MappingSet set;
  ASSERT_TRUE(set.AddSource(GeneratePbxMappings(PbxMappingParams{
                       .name = "pbx9", .extension_prefix = "9"}))
                  .ok());
  ASSERT_TRUE(set.AddSource(GeneratePbxMappings(PbxMappingParams{
                       .name = "pbx5", .extension_prefix = "5"}))
                  .ok());
  ASSERT_TRUE(
      set.AddSource(GenerateMpMappings(MpMappingParams{})).ok());
  EXPECT_TRUE(set.Validate().ok());
  EXPECT_EQ(set.mappings().size(), 6u);
}

}  // namespace
}  // namespace metacomm::core
